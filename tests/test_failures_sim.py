"""Failure model: MTBF math, checkpoint cost, goodput, Young/Daly.

Acceptance property: the expected-goodput curve's empirical optimum
must land within 10% of the Young/Daly closed form ``sqrt(2 C M)`` for
at least two machine specs.
"""

import math

import numpy as np
import pytest

from repro.cluster import ALPS, FRONTIER, PERLMUTTER
from repro.config import GPTConfig, get_model
from repro.core import GridConfig
from repro.simulate import (
    FailureModel,
    checkpoint_time,
    expected_goodput,
    goodput_curve,
    optimal_checkpoint_interval,
    simulate_iteration,
    simulate_run,
    young_daly_interval,
)


class TestFailureModel:
    def test_job_mtbf_shrinks_with_node_count(self):
        fm = FailureModel(node_mtbf=1000.0)
        assert fm.job_mtbf(1) == pytest.approx(1000.0)
        assert fm.job_mtbf(100) == pytest.approx(10.0)
        assert fm.failure_rate(10) == pytest.approx(0.01)

    def test_straggler_expectation(self):
        fm = FailureModel(straggler_prob=0.1, straggler_slowdown=3.0)
        assert fm.expected_iteration_time(10.0) == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(node_mtbf=0.0)
        with pytest.raises(ValueError):
            FailureModel(straggler_prob=1.5)
        with pytest.raises(ValueError):
            FailureModel(straggler_slowdown=0.5)
        with pytest.raises(ValueError):
            FailureModel(restart_time=-1.0)


class TestCheckpointTime:
    def test_scales_with_model_size(self):
        small = checkpoint_time(get_model("GPT-20B"), FRONTIER, 1024)
        large = checkpoint_time(get_model("GPT-80B"), FRONTIER, 1024)
        assert large > small * 2

    def test_filesystem_caps_aggregate_bandwidth(self):
        cfg = get_model("GPT-20B")
        slow_fs = FailureModel(fs_bandwidth=1e9)
        fast_fs = FailureModel(fs_bandwidth=1e15)
        assert checkpoint_time(cfg, FRONTIER, 4096, slow_fs) > checkpoint_time(
            cfg, FRONTIER, 4096, fast_fs
        )
        # With an effectively infinite filesystem, more nodes write faster.
        assert checkpoint_time(cfg, FRONTIER, 4096, fast_fs) < checkpoint_time(
            cfg, FRONTIER, 512, fast_fs
        )


class TestYoungDaly:
    def test_closed_form(self):
        # sqrt(2 * 50 * 10000) = 1000
        assert young_daly_interval(50.0, 10000.0) == pytest.approx(1000.0)

    @pytest.mark.parametrize(
        "machine,num_gpus", [(PERLMUTTER, 512), (FRONTIER, 1024), (ALPS, 1024)]
    )
    def test_curve_optimum_matches_young_daly(self, machine, num_gpus):
        """The acceptance criterion: empirical argmax of the goodput
        curve within 10% of sqrt(2 C M) on multiple machine specs."""
        fm = FailureModel()
        cfg = get_model("GPT-20B")
        ckpt = checkpoint_time(cfg, machine, num_gpus, fm)
        nodes = num_gpus // machine.gpus_per_node
        mtbf = fm.job_mtbf(nodes)
        yd = young_daly_interval(ckpt, mtbf)
        emp = optimal_checkpoint_interval(ckpt, fm.restart_time, mtbf)
        assert abs(emp - yd) / yd < 0.10

    def test_goodput_decreases_away_from_optimum(self):
        ckpt, restart, mtbf = 30.0, 120.0, 3600.0
        yd = young_daly_interval(ckpt, mtbf)
        at_opt = expected_goodput(yd, ckpt, restart, mtbf)
        assert expected_goodput(yd / 10, ckpt, restart, mtbf) < at_opt
        assert expected_goodput(yd * 10, ckpt, restart, mtbf) < at_opt
        assert 0.0 < at_opt < 1.0

    def test_goodput_curve_matches_pointwise_eval(self):
        taus = [10.0, 100.0, 1000.0]
        curve = goodput_curve(taus, 30.0, 120.0, 3600.0)
        assert curve == [
            expected_goodput(t, 30.0, 120.0, 3600.0) for t in taus
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_goodput(0.0, 30.0, 120.0, 3600.0)
        with pytest.raises(ValueError):
            expected_goodput(10.0, 30.0, 120.0, 0.0)
        with pytest.raises(ValueError):
            young_daly_interval(0.0, 3600.0)


class TestStochasticRun:
    def test_seed_determinism(self):
        fm = FailureModel(node_mtbf=100 * 3600.0)
        a = simulate_run(10.0, 200, 10, 30.0, fm, num_nodes=64, seed=11)
        b = simulate_run(10.0, 200, 10, 30.0, fm, num_nodes=64, seed=11)
        assert a == b

    def test_no_failures_without_risk(self):
        fm = FailureModel(node_mtbf=1e15)  # effectively failure-free
        out = simulate_run(10.0, 100, 10, 30.0, fm, num_nodes=1, seed=0)
        assert out.failures == 0
        assert out.work_time == pytest.approx(1000.0)
        # Wall = work + 9 interior checkpoints (none after the last step).
        assert out.wall_time == pytest.approx(1000.0 + 9 * 30.0)

    def test_failures_cost_goodput(self):
        safe = FailureModel(node_mtbf=1e15)
        risky = FailureModel(node_mtbf=50 * 3600.0)
        a = simulate_run(10.0, 500, 10, 30.0, safe, num_nodes=256, seed=4)
        b = simulate_run(10.0, 500, 10, 30.0, risky, num_nodes=256, seed=4)
        assert b.failures > 0
        assert b.goodput < a.goodput
        assert b.work_time == pytest.approx(a.work_time)  # same committed work

    def test_stragglers_stretch_wall_time(self):
        calm = FailureModel(node_mtbf=1e15)
        stormy = FailureModel(
            node_mtbf=1e15, straggler_prob=0.5, straggler_slowdown=4.0
        )
        a = simulate_run(10.0, 100, 10, 0.001, calm, num_nodes=8, seed=2)
        b = simulate_run(10.0, 100, 10, 0.001, stormy, num_nodes=8, seed=2)
        assert b.straggler_hits > 0
        assert b.wall_time > a.wall_time

    def test_stochastic_goodput_near_expectation(self):
        """Long seeded replay lands in the neighbourhood of the renewal
        expectation (loose 15% band: one sample path, finite horizon)."""
        fm = FailureModel(node_mtbf=2000 * 3600.0, restart_time=120.0)
        nodes = 256
        mtbf = fm.job_mtbf(nodes)
        ckpt = 30.0
        tau = young_daly_interval(ckpt, mtbf)
        iters = max(1, round(tau / 10.0))
        out = simulate_run(
            10.0, 400 * iters, iters, ckpt, fm, num_nodes=nodes, seed=9
        )
        expect = expected_goodput(iters * 10.0, ckpt, fm.restart_time, mtbf)
        assert out.goodput == pytest.approx(expect, rel=0.15)


class TestStragglerSlowdownsInExecutor:
    def _iter(self, **kw):
        cfg = GPTConfig(
            name="t", num_layers=2, hidden_size=512, num_heads=8,
            seq_len=256, vocab_size=8192,
        )
        return simulate_iteration(
            cfg, 16, GridConfig(2, 2, 2, 2), PERLMUTTER, noise=0.0, **kw
        )

    def test_compute_slowdown_scales_compute(self):
        base = self._iter()
        slow = self._iter(compute_slowdown=2.0)
        assert slow.compute_time == pytest.approx(2.0 * base.compute_time)
        assert slow.total_time > base.total_time

    def test_comm_slowdown_scales_raw_comm(self):
        base = self._iter()
        slow = self._iter(comm_slowdown=3.0)
        assert slow.raw_comm_time == pytest.approx(3.0 * base.raw_comm_time)
        assert slow.compute_time == pytest.approx(base.compute_time)

    def test_rejects_speedups(self):
        with pytest.raises(ValueError):
            self._iter(compute_slowdown=0.5)
        with pytest.raises(ValueError):
            self._iter(comm_slowdown=0.0)


class TestGoodputReportCLI:
    def test_report_runs_and_mentions_young_daly(self, capsys):
        from repro.tools.goodput_report import main

        assert main(["GPT-20B", "512", "perlmutter", "frontier",
                     "--iter-time", "10"]) == 0
        out = capsys.readouterr().out
        assert "Young/Daly" in out
        assert "perlmutter" in out
        assert "frontier" in out
        assert "E[goodput]" in out


class TestElasticGoodput:
    """The elastic-continuation vs restart-and-wait strategy model."""

    def test_shrunken_throughput_properties(self):
        from repro.simulate import shrunken_throughput

        assert shrunken_throughput(256, 1) == pytest.approx(255 / 256)
        assert shrunken_throughput(256, 0) == 1.0
        assert shrunken_throughput(8, 2, comm_penalty=0.25) == pytest.approx(
            0.75 * 0.75
        )
        with pytest.raises(ValueError):
            shrunken_throughput(8, 8)
        with pytest.raises(ValueError):
            shrunken_throughput(8, 1, comm_penalty=1.0)

    def test_elastic_goodput_monotone_in_replacement_wait(self):
        """Longer waits hurt both strategies, but elastic degrades
        gracefully (bounded by the shrunken-fraction loss) while
        restart-and-wait collapses."""
        from repro.simulate import (
            expected_elastic_goodput,
            expected_restart_goodput,
        )

        mtbf = 4 * 3600.0
        waits = [60.0, 600.0, 3600.0, 4 * 3600.0]
        elastic = [
            expected_elastic_goodput(600.0, 30.0, 120.0, mtbf, w, 0.9)
            for w in waits
        ]
        restart = [
            expected_restart_goodput(600.0, 30.0, 120.0, mtbf, w)
            for w in waits
        ]
        assert elastic == sorted(elastic, reverse=True)
        assert restart == sorted(restart, reverse=True)
        # Elastic can lose at most (1 - f) of the window to degradation.
        assert elastic[-1] > 0.8 * elastic[0]
        assert restart[-1] < 0.5 * restart[0]

    def test_zero_wait_elastic_still_pays_reshard(self):
        from repro.simulate import expected_elastic_goodput

        mtbf = 3600.0
        bound = 600.0 / 630.0  # checkpoint overhead alone
        el = expected_elastic_goodput(600.0, 30.0, 120.0, mtbf, 0.0, 0.9)
        assert el < bound  # the two reshard transitions are not free
        free = expected_elastic_goodput(600.0, 30.0, 0.0, mtbf, 0.0, 0.9)
        assert free == pytest.approx(bound)  # and they are the only cost

    def test_winner_flips_with_reshard_cost(self):
        """Elastic wins whenever resharding is cheap (buddy restores
        mean no rollback at all); only a prohibitively expensive
        reshard — rivaling the MTBF itself — hands the win back to
        restart-and-wait.  The simulator must express both regimes."""
        from repro.simulate import compare_recovery_strategies

        mtbf = 2 * 3600.0
        cheap = compare_recovery_strategies(
            600.0, 30.0, 120.0, mtbf, replacement_wait=3600.0,
            num_nodes=256, comm_penalty=0.0,
        )
        expensive = compare_recovery_strategies(
            600.0, 30.0, 120.0, mtbf, replacement_wait=0.0,
            num_nodes=16, comm_penalty=0.3, reshard_time=0.4 * mtbf,
        )
        assert cheap.winner == "elastic"
        assert cheap.advantage > 0.0
        assert expensive.winner == "restart"

    def test_validation(self):
        from repro.simulate import expected_elastic_goodput

        with pytest.raises(ValueError):
            expected_elastic_goodput(0.0, 30.0, 120.0, 3600.0)
        with pytest.raises(ValueError):
            expected_elastic_goodput(600.0, 30.0, 120.0, 3600.0,
                                     shrink_fraction=0.0)
        with pytest.raises(ValueError):
            expected_elastic_goodput(600.0, 30.0, -1.0, 3600.0)

    def test_report_cli_prints_strategy_comparison(self, capsys):
        from repro.tools.goodput_report import main

        assert main([
            "GPT-20B", "512", "perlmutter", "--iter-time", "10",
            "--node-mtbf-hours", "100", "--replacement-wait", "3600",
        ]) == 0
        out = capsys.readouterr().out
        assert "elastic" in out
        assert "restart-and-wait" in out
        assert "wins by" in out
