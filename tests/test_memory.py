"""Tests for the per-device memory model."""

import pytest

from repro.cluster import ALPS, FRONTIER, PERLMUTTER
from repro.config import get_model
from repro.core import GridConfig
from repro.simulate import estimate_memory, max_batch_per_replica


class TestMemoryBreakdown:
    def test_model_state_is_16_bytes_per_param(self):
        """bf16 weights + bf16 grads + fp32 master + fp32 Adam m,v =
        16 B/param, the ZeRO accounting."""
        cfg = get_model("GPT-5B")
        m = estimate_memory(cfg, GridConfig(1, 1, 1, 1), 1)
        assert m.model_state == pytest.approx(cfg.num_parameters() * 16)

    def test_tensor_parallelism_shards_state(self):
        cfg = get_model("GPT-20B")
        m1 = estimate_memory(cfg, GridConfig(1, 1, 1, 1), 8)
        m8 = estimate_memory(cfg, GridConfig(2, 2, 2, 1), 8)
        assert m8.model_state == pytest.approx(m1.model_state / 8)

    def test_data_parallelism_does_not_shard_state(self):
        cfg = get_model("GPT-5B")
        m1 = estimate_memory(cfg, GridConfig(1, 1, 1, 1), 8)
        m8 = estimate_memory(cfg, GridConfig(1, 1, 1, 8), 8)
        assert m8.model_state == pytest.approx(m1.model_state)

    def test_checkpointing_slashes_activation_memory(self):
        """Section VI-A's motivation: activations dominate without
        recomputation; checkpointing reduces them by ~num_layers."""
        cfg = get_model("GPT-5B")
        grid = GridConfig(2, 2, 2, 1)
        with_ck = estimate_memory(cfg, grid, 16, checkpointing=True)
        without = estimate_memory(cfg, grid, 16, checkpointing=False)
        assert without.activations > 10 * with_ck.activations
        # Non-activation categories are identical.
        assert without.model_state == with_ck.model_state
        assert without.workspace == with_ck.workspace

    def test_z_sharding_memory_optimization(self):
        """The paper's W-sharding along Z: weight state shrinks by G_z
        (vs Agarwal's replication, which would not)."""
        cfg = get_model("GPT-20B")
        m1 = estimate_memory(cfg, GridConfig(2, 2, 1, 1), 8)
        m4 = estimate_memory(cfg, GridConfig(2, 2, 4, 1), 8)
        assert m4.weights == pytest.approx(m1.weights / 4)
        # The gathered-W workspace, however, does NOT shrink with Z —
        # line 2 reassembles the full (j, i) block on every rank.
        assert m4.workspace == m1.workspace

    def test_activations_scale_with_batch(self):
        cfg = get_model("GPT-5B")
        grid = GridConfig(1, 1, 2, 1)
        a = estimate_memory(cfg, grid, 4).activations
        b = estimate_memory(cfg, grid, 8).activations
        assert b == pytest.approx(2 * a)

    def test_validation(self):
        cfg = get_model("GPT-5B")
        with pytest.raises(ValueError):
            estimate_memory(cfg, GridConfig(1, 1, 1, 1), 0)


class TestFits:
    def test_5b_does_not_fit_one_a100(self):
        """5B params x 16 B = 80 GB of state alone vs a 40 GB A100 —
        why sharded methods exist (Section IV-A)."""
        cfg = get_model("GPT-5B")
        m = estimate_memory(cfg, GridConfig(1, 1, 1, 1), 1)
        assert not m.fits(PERLMUTTER)

    def test_5b_fits_with_4way_sharding(self):
        cfg = get_model("GPT-5B")
        m = estimate_memory(cfg, GridConfig(1, 1, 4, 1), 4)
        assert m.fits(PERLMUTTER)

    def test_320b_needs_large_tensor_groups_on_frontier(self):
        cfg = get_model("GPT-320B")
        small = estimate_memory(cfg, GridConfig(2, 2, 2, 1), 8)
        assert not small.fits(FRONTIER)
        big = estimate_memory(cfg, GridConfig(2, 2, 64, 1), 128)
        assert big.fits(FRONTIER)

    def test_headroom_parameter(self):
        cfg = get_model("GPT-5B")
        m = estimate_memory(cfg, GridConfig(1, 1, 4, 1), 4)
        assert m.fits(ALPS, headroom=0.9)
        assert not m.fits(ALPS, headroom=m.total / ALPS.gpu.memory_bytes * 0.99)


class TestMaxBatch:
    def test_max_batch_fits_and_double_does_not(self):
        cfg = get_model("GPT-20B")
        grid = GridConfig(2, 2, 8, 1)
        b = max_batch_per_replica(cfg, grid, FRONTIER)
        assert b >= grid.gz
        assert estimate_memory(cfg, grid, b).fits(FRONTIER)
        assert not estimate_memory(cfg, grid, 2 * b).fits(FRONTIER)

    def test_zero_when_state_does_not_fit(self):
        cfg = get_model("GPT-640B")
        assert max_batch_per_replica(cfg, GridConfig(2, 2, 2, 1), FRONTIER) == 0

    def test_checkpointing_allows_bigger_batches(self):
        cfg = get_model("GPT-10B")
        grid = GridConfig(2, 2, 4, 1)
        with_ck = max_batch_per_replica(cfg, grid, FRONTIER, checkpointing=True)
        without = max_batch_per_replica(cfg, grid, FRONTIER, checkpointing=False)
        assert with_ck > without
