"""Failure-injection tests: the library must *detect* broken states, not
silently train through them."""

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.core import broadcast_parameters, replicas_in_sync
from repro.nn import GPT, MixedPrecisionTrainer, SGD
from repro.runtime import ProcessGroup, all_reduce


def tiny_config():
    return GPTConfig(
        name="fi", num_layers=1, hidden_size=16, num_heads=4,
        seq_len=10, vocab_size=32,
    )


class TestNonFiniteGuard:
    def test_poisoned_gradient_skips_step(self):
        """A NaN smuggled into a parameter produces NaN gradients; the
        trainer must refuse to step and leave the weights untouched."""
        cfg = tiny_config()
        model = GPT(cfg, seed=0)
        trainer = MixedPrecisionTrainer(
            model, SGD(model.parameters(), lr=0.1), bf16=False
        )
        ids = np.random.default_rng(0).integers(0, 32, (2, 6))
        # Poison one weight: the loss and grads become NaN.
        model.ln_f.weight.data[0] = np.nan
        before = model.wte.weight.data.copy()
        trainer.step(ids)
        assert trainer.skipped_steps == 1
        np.testing.assert_array_equal(model.wte.weight.data, before)
        # Gradients were cleared for the next attempt.
        assert all(p.grad is None for p in model.parameters())

    def test_clean_steps_are_not_skipped(self):
        cfg = tiny_config()
        model = GPT(cfg, seed=0)
        trainer = MixedPrecisionTrainer(
            model, SGD(model.parameters(), lr=0.1), bf16=False
        )
        ids = np.random.default_rng(0).integers(0, 32, (2, 6))
        before = model.wte.weight.data.copy()
        trainer.step(ids)
        assert trainer.skipped_steps == 0
        assert not np.array_equal(model.wte.weight.data, before)

    def test_guard_can_be_disabled(self):
        cfg = tiny_config()
        model = GPT(cfg, seed=0)
        trainer = MixedPrecisionTrainer(
            model, SGD(model.parameters(), lr=0.1), bf16=False,
            skip_nonfinite=False,
        )
        model.ln_f.weight.data[0] = np.nan
        ids = np.random.default_rng(0).integers(0, 32, (2, 6))
        trainer.step(ids)
        # Without the guard the corruption spreads into the weights.
        assert np.isnan(model.wte.weight.data).any() or np.isnan(
            model.ln_f.weight.data
        ).any()


class TestReplicaDesyncDetection:
    def test_bit_flip_detected(self):
        """A single corrupted element on one replica must be caught by
        the consistency check (the invariant data parallelism rests on)."""
        models = [GPT(tiny_config(), seed=0) for _ in range(2)]
        broadcast_parameters(models)
        assert replicas_in_sync(models)
        models[1].blocks[0].mlp.fc1.weight.data[0, 0] += 1e-9
        assert not replicas_in_sync(models)
        assert replicas_in_sync(models, atol=1e-6)


class TestRuntimeRejectsCorruptInputs:
    def test_shape_corruption_rejected(self):
        g = ProcessGroup((0, 1))
        bufs = {0: np.zeros((4, 2)), 1: np.zeros((4, 3))}
        with pytest.raises(ValueError):
            all_reduce(bufs, g)

    def test_dtype_corruption_rejected(self):
        g = ProcessGroup((0, 1))
        bufs = {0: np.zeros(4, dtype=np.float64), 1: np.zeros(4, dtype=np.float32)}
        with pytest.raises(ValueError):
            all_reduce(bufs, g)

    def test_nan_propagates_visibly_not_silently(self):
        """Collectives do not mask NaNs: a poisoned rank poisons the
        reduction (so the non-finite guard upstream can catch it)."""
        g = ProcessGroup((0, 1))
        bufs = {0: np.full(4, np.nan), 1: np.ones(4)}
        out = all_reduce(bufs, g)
        assert np.isnan(out[0]).all() and np.isnan(out[1]).all()
