"""Tests for the Table II model zoo."""

import pytest

from repro.config import DEFAULT_SEQ_LEN, MODEL_ZOO, GPTConfig, get_model


def test_zoo_has_all_table2_rows():
    names = {
        "GPT-5B", "GPT-10B", "GPT-20B", "GPT-40B", "GPT-60B",
        "GPT-80B", "GPT-160B", "GPT-320B", "GPT-640B",
    }
    assert set(MODEL_ZOO) == names


@pytest.mark.parametrize(
    "name,layers,hidden,heads",
    [
        ("GPT-5B", 24, 4096, 32),
        ("GPT-10B", 32, 5120, 40),
        ("GPT-20B", 32, 7168, 56),
        ("GPT-40B", 38, 9216, 72),
        ("GPT-60B", 56, 9216, 72),
        ("GPT-80B", 42, 12288, 96),
        ("GPT-160B", 84, 12288, 96),
        ("GPT-320B", 96, 16384, 128),
        ("GPT-640B", 192, 16384, 128),
    ],
)
def test_table2_hyperparameters(name, layers, hidden, heads):
    cfg = get_model(name)
    assert cfg.num_layers == layers
    assert cfg.hidden_size == hidden
    assert cfg.num_heads == heads
    assert cfg.seq_len == DEFAULT_SEQ_LEN


@pytest.mark.parametrize("name", sorted(MODEL_ZOO))
def test_parameter_count_close_to_nominal(name):
    """The exact count should be within 25% of the size label."""
    cfg = get_model(name)
    exact = cfg.num_parameters()
    assert 0.75 * cfg.nominal_params <= exact <= 1.3 * cfg.nominal_params


def test_get_model_shorthand():
    assert get_model("20B") is get_model("GPT-20B")


def test_get_model_unknown():
    with pytest.raises(KeyError):
        get_model("GPT-7B")


def test_head_divisibility_enforced():
    with pytest.raises(ValueError):
        GPTConfig(name="bad", num_layers=2, hidden_size=100, num_heads=7)


def test_scaled_override():
    cfg = get_model("GPT-5B").scaled(seq_len=1024)
    assert cfg.seq_len == 1024
    assert cfg.hidden_size == 4096


def test_ffn_hidden_and_head_dim():
    cfg = get_model("GPT-5B")
    assert cfg.ffn_hidden == 4 * 4096
    assert cfg.head_dim == 128
