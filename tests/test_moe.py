"""Tests for the Mixture-of-Experts extension (router, experts, expert
parallelism over the differentiable all-to-all)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moe import ExpertParallelMoE, MoELayer, TopKRouter, load_balance_loss
from repro.nn import SGD
from repro.runtime import CommTracer, ProcessGroup, all_to_all
from repro.tensor import Tensor


def tokens(t=12, dim=8, seed=0):
    return np.random.default_rng(seed).standard_normal((t, dim))


class TestAllToAll:
    def test_exchange_semantics(self):
        g = ProcessGroup((0, 1, 2))
        chunks = {
            r: [np.full((r + 1, 2), 10 * r + j) for j in range(3)]
            for r in g.ranks
        }
        out = all_to_all(chunks, g)
        # Rank 2 receives from src positions 0,1,2 their j=2 chunks.
        for src in range(3):
            np.testing.assert_array_equal(
                out[2][src], np.full((src + 1, 2), 10 * src + 2)
            )

    def test_variable_and_empty_chunks(self):
        g = ProcessGroup((0, 1))
        chunks = {
            0: [np.zeros((0, 4)), np.ones((3, 4))],
            1: [np.full((2, 4), 7.0), np.zeros((0, 4))],
        }
        out = all_to_all(chunks, g)
        assert out[0][0].shape == (0, 4)
        np.testing.assert_array_equal(out[0][1], np.full((2, 4), 7.0))
        np.testing.assert_array_equal(out[1][0], np.ones((3, 4)))

    def test_validation(self):
        g = ProcessGroup((0, 1))
        with pytest.raises(ValueError):
            all_to_all({0: [np.zeros(1)] * 2}, g)  # missing rank 1
        with pytest.raises(ValueError):
            all_to_all({0: [np.zeros(1)], 1: [np.zeros(1)]}, g)  # wrong count

    def test_traced(self):
        g = ProcessGroup((0, 1))
        tr = CommTracer()
        chunks = {r: [np.zeros((1, 2)), np.zeros((1, 2))] for r in g.ranks}
        all_to_all(chunks, g, tracer=tr, tag="x")
        assert tr.ops() == ["all_to_all"]


class TestRouter:
    def test_topk_selection(self):
        rng = np.random.default_rng(0)
        router = TopKRouter(8, 4, k=2, rng=rng)
        idx, gates, probs = router.route(Tensor(tokens()))
        assert idx.shape == (12, 2)
        assert (idx[:, 0] != idx[:, 1]).all()  # distinct experts
        # Gates renormalized per token.
        np.testing.assert_allclose(gates.data.sum(axis=1), 1.0, rtol=1e-12)
        np.testing.assert_allclose(probs.data.sum(axis=1), 1.0, rtol=1e-12)
        # Top-1 really is the argmax.
        np.testing.assert_array_equal(idx[:, 0], np.argmax(probs.data, axis=1))

    def test_k_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            TopKRouter(8, 4, k=5, rng=rng)
        with pytest.raises(ValueError):
            TopKRouter(8, 4, k=0, rng=rng)


class TestLoadBalanceLoss:
    def test_uniform_routing_gives_one(self):
        e = 4
        idx = np.repeat(np.arange(e), 3)[:, None]  # 3 tokens per expert
        probs = Tensor(np.full((12, e), 1.0 / e))
        assert load_balance_loss(idx, probs, e).item() == pytest.approx(1.0)

    def test_collapsed_routing_is_penalized(self):
        e = 4
        idx = np.zeros((12, 1), dtype=int)  # everyone to expert 0
        p = np.zeros((12, e))
        p[:, 0] = 0.97
        p[:, 1:] = 0.01
        probs = Tensor(p)
        assert load_balance_loss(idx, probs, e).item() > 3.0

    def test_differentiable_through_probs(self):
        e = 3
        idx = np.array([[0], [1], [2]])
        probs = Tensor(np.full((3, e), 1.0 / e), requires_grad=True)
        load_balance_loss(idx, probs, e).backward()
        assert probs.grad is not None


class TestSerialMoE:
    def test_output_shape_and_aux(self):
        layer = MoELayer(8, 4, hidden=16, k=2, rng=np.random.default_rng(0))
        out, aux = layer(Tensor(tokens()))
        assert out.shape == (12, 8)
        assert aux.item() > 0

    def test_k1_uses_single_expert_per_token(self):
        """With k=1, each token's output is exactly its top expert's."""
        rng = np.random.default_rng(1)
        layer = MoELayer(8, 4, hidden=16, k=1, rng=rng)
        x = tokens(seed=2)
        out, _ = layer(Tensor(x))
        idx, gates, _ = layer.router.route(Tensor(x))
        np.testing.assert_allclose(gates.data, 1.0)  # renormalized top-1
        for t in range(12):
            e = idx[t, 0]
            expert_out = layer.experts[e](Tensor(x[t : t + 1])).data[0]
            np.testing.assert_allclose(out.data[t], expert_out, rtol=1e-12)

    def test_compute_is_sparse(self):
        """MoE's defining property: doubling the expert count does not
        change the number of expert-MLP token evaluations (~k per
        token), only the parameter count."""
        rng = np.random.default_rng(3)
        small = MoELayer(8, 2, hidden=16, k=2, rng=rng)
        big = MoELayer(8, 8, hidden=16, k=2, rng=rng)
        assert big.num_parameters() > 3 * small.num_parameters()
        # Token-evaluations = sum over experts of routed tokens = T * k
        # in both cases (counted via the routing indices).
        for layer in (small, big):
            idx, _, _ = layer.router.route(Tensor(tokens(seed=4)))
            assert idx.size == 12 * 2

    def test_gradients_reach_all_used_experts(self):
        layer = MoELayer(8, 4, hidden=16, k=2, rng=np.random.default_rng(5))
        x = Tensor(tokens(seed=6), requires_grad=True)
        out, aux = layer(x)
        (out.sum() + aux).backward()
        idx, _, _ = layer.router.route(Tensor(tokens(seed=6)))
        used = set(idx.ravel())
        for e in used:
            assert layer.experts[e].fc1.weight.grad is not None
        assert x.grad is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            MoELayer(8, 0)
        layer = MoELayer(8, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 3, 8))))

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(7)
        layer = MoELayer(8, 4, hidden=16, k=2, rng=rng)
        opt = SGD(layer.parameters(), lr=0.5)
        x = tokens(t=16, seed=8)
        target = np.random.default_rng(9).standard_normal((16, 8))
        first = None
        for _ in range(40):
            out, aux = layer(Tensor(x))
            diff = out - Tensor(target)
            loss = (diff * diff).sum() * (1.0 / target.size) + aux * 0.01
            if first is None:
                first = loss.item()
            layer.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.9


class TestExpertParallel:
    @pytest.mark.parametrize("ranks,experts,k", [(2, 4, 2), (2, 4, 1), (4, 4, 2), (2, 2, 1)])
    def test_matches_serial(self, ranks, experts, k):
        rng = np.random.default_rng(0)
        layer = MoELayer(8, experts, hidden=16, k=k, rng=rng)
        x = tokens(t=4 * ranks, seed=1)
        serial_out, serial_aux = layer(Tensor(x))

        group = ProcessGroup(tuple(range(ranks)))
        ep = ExpertParallelMoE(layer, group)
        shard = x.shape[0] // ranks
        parts = {
            r: Tensor(x[i * shard : (i + 1) * shard])
            for i, r in enumerate(group.ranks)
        }
        outs, aux = ep.forward(parts)
        full = np.concatenate([outs[r].data for r in group.ranks])
        np.testing.assert_allclose(full, serial_out.data, rtol=1e-10, atol=1e-12)
        assert aux.item() == pytest.approx(serial_aux.item(), rel=1e-12)

    def test_gradients_match_serial(self):
        rng = np.random.default_rng(2)
        layer = MoELayer(8, 4, hidden=16, k=2, rng=rng)
        x = tokens(t=12, seed=3)
        out, aux = layer(Tensor(x))
        (out.sum() + aux).backward()
        ref = {n: p.grad.copy() for n, p in layer.named_parameters()}
        layer.zero_grad()

        group = ProcessGroup((0, 1))
        ep = ExpertParallelMoE(layer, group)
        parts = {0: Tensor(x[:6]), 1: Tensor(x[6:])}
        outs, aux_p = ep.forward(parts)
        (outs[0].sum() + outs[1].sum() + aux_p).backward()
        for n, p in layer.named_parameters():
            np.testing.assert_allclose(p.grad, ref[n], rtol=1e-9, atol=1e-12)

    def test_comm_pattern_is_two_all_to_alls(self):
        rng = np.random.default_rng(4)
        layer = MoELayer(8, 4, hidden=16, k=2, rng=rng)
        group = ProcessGroup((0, 1))
        tr = CommTracer()
        ep = ExpertParallelMoE(layer, group, tracer=tr)
        x = tokens(t=8, seed=5)
        ep.forward({0: Tensor(x[:4]), 1: Tensor(x[4:])})
        assert [r.tag for r in tr.records] == ["moe.dispatch", "moe.combine"]
        assert all(r.op == "all_to_all" for r in tr.records)
        # Validation-enabled mode: the dispatch/combine split matrices
        # must be transposed (tokens return home) and the schedule clean.
        from repro.runtime import validate_schedule

        violations = validate_schedule(tr)
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_expert_parallel_schedule_validator_clean_4ranks(self):
        from repro.runtime import validate_schedule

        rng = np.random.default_rng(7)
        layer = MoELayer(8, 8, hidden=16, k=2, rng=rng)
        group = ProcessGroup((0, 1, 2, 3))
        tr = CommTracer()
        ep = ExpertParallelMoE(layer, group, tracer=tr)
        x = tokens(t=16, seed=8)
        parts = {
            r: Tensor(x[4 * i : 4 * (i + 1)])
            for i, r in enumerate(group.ranks)
        }
        outs, aux = ep.forward(parts)
        total = outs[0].sum()
        for r in group.ranks[1:]:
            total = total + outs[r].sum()
        (total + aux).backward()
        splits = [e.splits for e in tr.events if e.tag == "moe.dispatch"]
        assert len(splits) == 4 and all(len(s) == 4 for s in splits)
        violations = validate_schedule(tr)
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_divisibility_validation(self):
        layer = MoELayer(8, 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            ExpertParallelMoE(layer, ProcessGroup((0, 1)))

    def test_owner_position(self):
        layer = MoELayer(8, 4, rng=np.random.default_rng(0))
        ep = ExpertParallelMoE(layer, ProcessGroup((0, 1)))
        assert ep.owner_position(0) == 0
        assert ep.owner_position(3) == 1

    @given(seed=st.integers(0, 30), t=st.sampled_from([4, 8, 12]))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_property(self, seed, t):
        rng = np.random.default_rng(seed)
        layer = MoELayer(6, 4, hidden=8, k=2, rng=rng)
        x = np.random.default_rng(seed + 100).standard_normal((t, 6))
        serial_out, _ = layer(Tensor(x))
        group = ProcessGroup((0, 1))
        ep = ExpertParallelMoE(layer, group)
        parts = {0: Tensor(x[: t // 2]), 1: Tensor(x[t // 2 :])}
        outs, _ = ep.forward(parts)
        full = np.concatenate([outs[0].data, outs[1].data])
        np.testing.assert_allclose(full, serial_out.data, rtol=1e-9, atol=1e-11)


class TestMoESchedule:
    def test_all_to_all_time_shapes(self):
        from repro.cluster import ALPS, FRONTIER
        from repro.moe import all_to_all_time

        assert all_to_all_time(1e6, 1, FRONTIER, 1) == 0.0
        # On Alps the NVLink fabric beats the NICs, so in-node wins.
        in_node = all_to_all_time(1e8, 4, ALPS, 1)
        across = all_to_all_time(1e8, 4, ALPS, 4)
        assert across > in_node > 0
        # On Frontier the cross-die links (50 GB/s) are *slower* than the
        # NIC aggregate (100 GB/s) — a real quirk the substrate models.
        assert all_to_all_time(1e8, 8, FRONTIER, 1) > all_to_all_time(
            1e8, 8, FRONTIER, 8
        )
        # At scale, congestion flips it back.
        assert all_to_all_time(1e8, 8, FRONTIER, 4096) > all_to_all_time(
            1e8, 8, FRONTIER, 1
        )

    def test_expert_parallel_scaling(self):
        """More expert-parallel ranks: compute per rank constant (tokens
        per rank fixed), communication grows — the trade-off [17]
        navigates."""
        from repro.cluster import FRONTIER
        from repro.moe import simulate_moe_layer

        small = simulate_moe_layer(4096, 4096, 16384, 16, 2, FRONTIER)
        big = simulate_moe_layer(4096, 4096, 16384, 64, 64, FRONTIER)
        assert big.expert_compute == pytest.approx(small.expert_compute)
        assert big.comm_fraction > small.comm_fraction

    def test_within_node_expert_parallelism_is_cheap(self):
        from repro.cluster import FRONTIER
        from repro.moe import simulate_moe_layer

        r8 = simulate_moe_layer(4096, 4096, 16384, 8, 8, FRONTIER)
        r64 = simulate_moe_layer(4096, 4096, 16384, 64, 64, FRONTIER)
        assert r8.comm_fraction < r64.comm_fraction
        assert 0 < r8.comm_fraction < 0.5

    def test_validation(self):
        from repro.cluster import FRONTIER
        from repro.moe import simulate_moe_layer

        with pytest.raises(ValueError):
            simulate_moe_layer(128, 64, 256, 6, 4, FRONTIER)
        with pytest.raises(ValueError):
            simulate_moe_layer(0, 64, 256, 4, 4, FRONTIER)


class TestMoEGPT:
    def _cfg(self, layers=4):
        from repro.config import GPTConfig

        return GPTConfig(
            name="moegpt", num_layers=layers, hidden_size=16,
            num_heads=4, seq_len=12, vocab_size=32,
        )

    def test_alternating_moe_blocks(self):
        from repro.moe import MoEGPT

        m = MoEGPT(self._cfg(4), num_experts=4, moe_every=2, seed=0)
        assert m.num_moe_blocks == 2
        m_all = MoEGPT(self._cfg(4), num_experts=4, moe_every=1, seed=0)
        assert m_all.num_moe_blocks == 4

    def test_forward_shapes_and_aux(self):
        from repro.moe import MoEGPT

        m = MoEGPT(self._cfg(), num_experts=4, seed=0)
        ids = np.random.default_rng(0).integers(0, 32, (2, 8))
        logits, aux = m.forward(ids)
        assert logits.shape == (2, 8, 32)
        assert aux is not None and aux.item() > 0

    def test_sparse_has_more_params_than_dense(self):
        from repro.moe import MoEGPT
        from repro.nn import GPT

        cfg = self._cfg()
        dense = GPT(cfg, seed=0)
        sparse = MoEGPT(cfg, num_experts=8, moe_every=1, seed=0)
        assert sparse.num_parameters() > 2 * dense.num_parameters()

    def test_training_reduces_loss(self):
        from repro.moe import MoEGPT

        m = MoEGPT(self._cfg(layers=2), num_experts=4, moe_every=1, seed=0)
        opt = SGD(m.parameters(), lr=0.3)
        ids = np.random.default_rng(1).integers(0, 32, (4, 10))
        first = None
        for _ in range(10):
            loss = m.loss(ids)
            if first is None:
                first = loss.item()
            m.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.9

    def test_goldfish_mask_compatible(self):
        """The MoE LM accepts the same loss_mask hook as the dense GPT,
        so the memorization lab could run on sparse models."""
        from repro.memorization import goldfish_mask
        from repro.moe import MoEGPT

        m = MoEGPT(self._cfg(layers=2), num_experts=2, seed=0)
        ids = np.random.default_rng(2).integers(0, 32, (2, 10))
        mask = goldfish_mask(ids, k=2, h=3)
        full = m.loss(ids).item()
        masked = m.loss(ids, loss_mask=mask).item()
        assert masked != full

    def test_validation(self):
        from repro.moe import MoEGPT

        with pytest.raises(ValueError):
            MoEGPT(self._cfg(), moe_every=0)
        m = MoEGPT(self._cfg(), seed=0)
        with pytest.raises(ValueError):
            m.forward(np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            m.forward(np.zeros((1, 100), dtype=int))
