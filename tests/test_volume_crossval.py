"""Cross-validation: analytic communication volumes == traced bytes.

These tests close the loop between the performance model's byte counts
(the numerators of Eqs. 1-5) and the *executable* Algorithm 1: the
functional implementations issue real collectives whose buffer sizes the
tracer records, and the analytic volumes must match them exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPTConfig
from repro.core import (
    Grid4D,
    GridConfig,
    ParallelGPT,
    pmm3d_backward,
    pmm3d_forward,
    shard_input,
    shard_weight,
)
from repro.nn import GPT
from repro.perfmodel import (
    CollectiveVolumes,
    LayerShape,
    gpt_forward_backward_volumes,
    layer_volumes,
)
from repro.runtime import CommTracer


def traced_bytes(tracer: CommTracer, tags: set[str]) -> float:
    return float(
        sum(r.bytes_per_rank for r in tracer.records if r.tag in tags)
    )


class TestPMM3DVolumes:
    @pytest.mark.parametrize(
        "gx,gy,gz", [(1, 1, 1), (2, 1, 1), (1, 2, 1), (1, 1, 2), (2, 2, 2), (4, 2, 2)]
    )
    @pytest.mark.parametrize("transposed", [False, True])
    def test_layer_volumes_match_trace(self, gx, gy, gz, transposed):
        """One FC layer's forward+backward collective bytes, traced vs
        computed, for all four collective families."""
        rng = np.random.default_rng(0)
        m = 4 * gz
        k = 8 * gx * gy * gz
        n = 4 * gx * gy
        tracer = CommTracer()
        grid = Grid4D(GridConfig(gx, gy, gz), tracer=tracer)

        I = rng.standard_normal((m, k))
        W = rng.standard_normal((k, n))
        dO = rng.standard_normal((m, n))
        I_parts = shard_input(I, grid, transposed=transposed)
        W_shards = shard_weight(W, grid, transposed=transposed)
        O_parts, cache = pmm3d_forward(
            grid, I_parts, W_shards, transposed=transposed
        )
        dO_parts = shard_input(dO, grid, transposed=not transposed)
        pmm3d_backward(grid, dO_parts, cache, transposed=transposed)

        vol = layer_volumes(
            LayerShape("fc", m, k, n, transposed), grid.config, dtype_bytes=8
        )
        assert traced_bytes(tracer, {"pmm3d.AG_z"}) == pytest.approx(vol.ag_z)
        assert traced_bytes(tracer, {"pmm3d.RS_z"}) == pytest.approx(vol.rs_z)
        fwd_tag = "pmm3d.AR_x" if transposed else "pmm3d.AR_y"
        bwd_tag = "pmm3d.AR_y" if transposed else "pmm3d.AR_x"
        assert traced_bytes(tracer, {fwd_tag}) == pytest.approx(vol.ar_fwd)
        assert traced_bytes(tracer, {bwd_tag}) == pytest.approx(vol.ar_bwd)

    @given(
        gx=st.sampled_from([1, 2]),
        gy=st.sampled_from([1, 2, 3]),
        gz=st.sampled_from([1, 2]),
        mm=st.integers(1, 3),
        nn=st.integers(1, 2),
        transposed=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_layer_volume_property(self, gx, gy, gz, mm, nn, transposed):
        rng = np.random.default_rng(1)
        m = mm * gz * 2
        k = 4 * gx * gy * gz
        n = nn * gx * gy * 2
        tracer = CommTracer()
        grid = Grid4D(GridConfig(gx, gy, gz), tracer=tracer)
        I_parts = shard_input(
            rng.standard_normal((m, k)), grid, transposed=transposed
        )
        W_shards = shard_weight(
            rng.standard_normal((k, n)), grid, transposed=transposed
        )
        O_parts, cache = pmm3d_forward(grid, I_parts, W_shards, transposed=transposed)
        dO_parts = shard_input(
            rng.standard_normal((m, n)), grid, transposed=not transposed
        )
        pmm3d_backward(grid, dO_parts, cache, transposed=transposed)
        vol = layer_volumes(
            LayerShape("fc", m, k, n, transposed), grid.config, dtype_bytes=8
        )
        total_traced = traced_bytes(
            tracer, {"pmm3d.AG_z", "pmm3d.RS_z", "pmm3d.AR_x", "pmm3d.AR_y"}
        )
        total_analytic = vol.ag_z + vol.rs_z + vol.ar_fwd + vol.ar_bwd
        assert total_traced == pytest.approx(total_analytic)


class TestParallelGPTVolumes:
    @pytest.mark.parametrize("gx,gy,gz", [(2, 1, 1), (1, 2, 1), (2, 2, 2)])
    def test_forward_collective_bytes_match(self, gx, gy, gz):
        """The functional ParallelGPT's forward-pass collectives (weight
        gathers and activation reduces) carry exactly the analytic byte
        volumes.  (Backward communication materializes as autograd
        accumulation, so only the forward is traced — see
        repro.core.collective_ops.)"""
        cfg = GPTConfig(
            name="t", num_layers=2, hidden_size=8 * gx * gy * gz,
            num_heads=gx * 2, seq_len=8, vocab_size=16 * gx,
        )
        tracer = CommTracer()
        grid = Grid4D(GridConfig(gx, gy, gz), tracer=tracer)
        serial = GPT(cfg, seed=0)
        par = ParallelGPT.from_serial(serial, grid)
        batch = 2 * gz
        ids = np.random.default_rng(0).integers(0, cfg.vocab_size, (batch, 7))
        par.loss(ids)

        vol = gpt_forward_backward_volumes(
            cfg, batch, grid.config, dtype_bytes=8, seq_len=6
        )
        assert traced_bytes(tracer, {"linear.AG_z"}) == pytest.approx(vol.ag_z)
        assert traced_bytes(
            tracer, {"linear.AR_x", "linear.AR_y"}
        ) == pytest.approx(vol.ar_fwd)

    def test_more_sharding_means_less_gather_per_record(self):
        """Z-sharding shrinks each gather record's payload by G_z while
        multiplying... nothing: the number of Z-groups is G_x*G_y, so
        total AG bytes fall linearly with G_z."""
        layer = LayerShape("fc", 16, 32, 8)
        v1 = layer_volumes(layer, GridConfig(1, 1, 1))
        v4 = layer_volumes(layer, GridConfig(1, 1, 4))
        assert v4.ag_z == pytest.approx(v1.ag_z / 4)

    def test_volumes_additive(self):
        a = CollectiveVolumes(1, 2, 3, 4)
        b = CollectiveVolumes(1, 1, 1, 1)
        c = a + b
        assert (c.ag_z, c.rs_z, c.ar_fwd, c.ar_bwd) == (2, 3, 4, 5)
