"""Cross-validation: analytic communication volumes == traced bytes.

These tests close the loop between the performance model's byte counts
(the numerators of Eqs. 1-5) and the *executable* Algorithm 1: the
functional implementations issue real collectives whose buffer sizes the
tracer records, and the analytic volumes must match them exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPTConfig
from repro.core import (
    Grid4D,
    GridConfig,
    ParallelGPT,
    pmm3d_backward,
    pmm3d_forward,
    shard_input,
    shard_weight,
)
from repro.nn import GPT
from repro.perfmodel import (
    CollectiveVolumes,
    LayerShape,
    gpt_forward_backward_volumes,
    layer_volumes,
)
from repro.perfmodel.ring import (
    all_gather_time,
    all_reduce_time,
    broadcast_time,
    reduce_scatter_time,
    ring_wire_bytes,
)
from repro.runtime import CommTracer, ProcessGroup, broadcast
from repro.runtime import collectives as rc


def traced_bytes(tracer: CommTracer, tags: set[str]) -> float:
    return float(
        sum(r.bytes_per_rank for r in tracer.records if r.tag in tags)
    )


class TestPMM3DVolumes:
    @pytest.mark.parametrize(
        "gx,gy,gz", [(1, 1, 1), (2, 1, 1), (1, 2, 1), (1, 1, 2), (2, 2, 2), (4, 2, 2)]
    )
    @pytest.mark.parametrize("transposed", [False, True])
    def test_layer_volumes_match_trace(self, gx, gy, gz, transposed):
        """One FC layer's forward+backward collective bytes, traced vs
        computed, for all four collective families."""
        rng = np.random.default_rng(0)
        m = 4 * gz
        k = 8 * gx * gy * gz
        n = 4 * gx * gy
        tracer = CommTracer()
        grid = Grid4D(GridConfig(gx, gy, gz), tracer=tracer)

        I = rng.standard_normal((m, k))
        W = rng.standard_normal((k, n))
        dO = rng.standard_normal((m, n))
        I_parts = shard_input(I, grid, transposed=transposed)
        W_shards = shard_weight(W, grid, transposed=transposed)
        O_parts, cache = pmm3d_forward(
            grid, I_parts, W_shards, transposed=transposed
        )
        dO_parts = shard_input(dO, grid, transposed=not transposed)
        pmm3d_backward(grid, dO_parts, cache, transposed=transposed)

        vol = layer_volumes(
            LayerShape("fc", m, k, n, transposed), grid.config, dtype_bytes=8
        )
        assert traced_bytes(tracer, {"pmm3d.AG_z"}) == pytest.approx(vol.ag_z)
        assert traced_bytes(tracer, {"pmm3d.RS_z"}) == pytest.approx(vol.rs_z)
        fwd_tag = "pmm3d.AR_x" if transposed else "pmm3d.AR_y"
        bwd_tag = "pmm3d.AR_y" if transposed else "pmm3d.AR_x"
        assert traced_bytes(tracer, {fwd_tag}) == pytest.approx(vol.ar_fwd)
        assert traced_bytes(tracer, {bwd_tag}) == pytest.approx(vol.ar_bwd)

    @given(
        gx=st.sampled_from([1, 2]),
        gy=st.sampled_from([1, 2, 3]),
        gz=st.sampled_from([1, 2]),
        mm=st.integers(1, 3),
        nn=st.integers(1, 2),
        transposed=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_layer_volume_property(self, gx, gy, gz, mm, nn, transposed):
        rng = np.random.default_rng(1)
        m = mm * gz * 2
        k = 4 * gx * gy * gz
        n = nn * gx * gy * 2
        tracer = CommTracer()
        grid = Grid4D(GridConfig(gx, gy, gz), tracer=tracer)
        I_parts = shard_input(
            rng.standard_normal((m, k)), grid, transposed=transposed
        )
        W_shards = shard_weight(
            rng.standard_normal((k, n)), grid, transposed=transposed
        )
        O_parts, cache = pmm3d_forward(grid, I_parts, W_shards, transposed=transposed)
        dO_parts = shard_input(
            rng.standard_normal((m, n)), grid, transposed=not transposed
        )
        pmm3d_backward(grid, dO_parts, cache, transposed=transposed)
        vol = layer_volumes(
            LayerShape("fc", m, k, n, transposed), grid.config, dtype_bytes=8
        )
        total_traced = traced_bytes(
            tracer, {"pmm3d.AG_z", "pmm3d.RS_z", "pmm3d.AR_x", "pmm3d.AR_y"}
        )
        total_analytic = vol.ag_z + vol.rs_z + vol.ar_fwd + vol.ar_bwd
        assert total_traced == pytest.approx(total_analytic)


class TestParallelGPTVolumes:
    @pytest.mark.parametrize("gx,gy,gz", [(2, 1, 1), (1, 2, 1), (2, 2, 2)])
    def test_forward_collective_bytes_match(self, gx, gy, gz):
        """The functional ParallelGPT's forward-pass collectives (weight
        gathers and activation reduces) carry exactly the analytic byte
        volumes.  (Backward communication materializes as autograd
        accumulation, so only the forward is traced — see
        repro.core.collective_ops.)"""
        cfg = GPTConfig(
            name="t", num_layers=2, hidden_size=8 * gx * gy * gz,
            num_heads=gx * 2, seq_len=8, vocab_size=16 * gx,
        )
        tracer = CommTracer()
        grid = Grid4D(GridConfig(gx, gy, gz), tracer=tracer)
        serial = GPT(cfg, seed=0)
        par = ParallelGPT.from_serial(serial, grid)
        batch = 2 * gz
        ids = np.random.default_rng(0).integers(0, cfg.vocab_size, (batch, 7))
        par.loss(ids)

        vol = gpt_forward_backward_volumes(
            cfg, batch, grid.config, dtype_bytes=8, seq_len=6
        )
        assert traced_bytes(tracer, {"linear.AG_z"}) == pytest.approx(vol.ag_z)
        assert traced_bytes(
            tracer, {"linear.AR_x", "linear.AR_y"}
        ) == pytest.approx(vol.ar_fwd)

    def test_more_sharding_means_less_gather_per_record(self):
        """Z-sharding shrinks each gather record's payload by G_z while
        multiplying... nothing: the number of Z-groups is G_x*G_y, so
        total AG bytes fall linearly with G_z."""
        layer = LayerShape("fc", 16, 32, 8)
        v1 = layer_volumes(layer, GridConfig(1, 1, 1))
        v4 = layer_volumes(layer, GridConfig(1, 1, 4))
        assert v4.ag_z == pytest.approx(v1.ag_z / 4)

    def test_volumes_additive(self):
        a = CollectiveVolumes(1, 2, 3, 4)
        b = CollectiveVolumes(1, 1, 1, 1)
        c = a + b
        assert (c.ag_z, c.rs_z, c.ar_fwd, c.ar_bwd) == (2, 3, 4, 5)


class TestBroadcastVolumes:
    """Regression: the traced broadcast volume must match the
    scatter–allgather cost :func:`repro.perfmodel.broadcast_time` prices
    (2 (p-1)/p of the buffer on the wire), not the naive root-sends-all
    tree the old implementation traced."""

    @pytest.mark.parametrize("p", [2, 3, 4, 8])
    def test_traced_record_matches_cost_model(self, p):
        rng = np.random.default_rng(p)
        group = ProcessGroup(tuple(range(p)))
        src = rng.standard_normal((5, 3))
        buffers = {r: (src.copy() if r == 0 else np.zeros_like(src)) for r in group}
        tracer = CommTracer()
        out = broadcast(buffers, group, root=0, tracer=tracer, tag="bc")

        # Functional: every rank holds the root's exact bytes.
        for r in group:
            np.testing.assert_array_equal(out[r], src)
        # One record, carrying the root-buffer byte count the model keys on.
        recs = [r for r in tracer.records if r.tag == "bc"]
        assert len(recs) == 1
        assert recs[0].bytes_per_rank == src.nbytes
        assert recs[0].root == 0
        # Time = wire bytes / bandwidth, for any bandwidth.
        beta = 7.5e9
        assert broadcast_time(src.nbytes, p, beta) == pytest.approx(
            ring_wire_bytes("broadcast", src.nbytes, p) / beta
        )

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_wire_bytes_consistent_with_all_time_fns(self, p):
        """ring_wire_bytes / beta reproduces every *_time bandwidth term."""
        n = 3840.0
        beta = 1e10
        cases = [
            ("all_reduce", all_reduce_time),
            ("reduce_scatter", reduce_scatter_time),
            ("all_gather", all_gather_time),
            ("broadcast", broadcast_time),
        ]
        for op, fn in cases:
            assert fn(n, p, beta) == pytest.approx(
                ring_wire_bytes(op, n, p) / beta
            ), op
        with pytest.raises(ValueError):
            ring_wire_bytes("gossip", n, p)

    def test_broadcast_routes_through_scatter_allgather(self, monkeypatch):
        """Structural: the executable broadcast must actually run the
        scatter + ring-all-gather the cost model prices (the pre-fix
        implementation copied the root buffer without any ring phase)."""
        calls = []
        real_ag = rc.all_gather

        def spy(buffers, group, *args, **kwargs):
            sample = buffers[group.ranks[0]]
            calls.append((group.size, sample.size))
            return real_ag(buffers, group, *args, **kwargs)

        monkeypatch.setattr(rc, "all_gather", spy)
        p = 4
        group = ProcessGroup(tuple(range(p)))
        src = np.arange(12, dtype=np.float64).reshape(3, 4)
        buffers = {r: (src.copy() if r == 0 else np.zeros_like(src)) for r in group}
        out = rc.broadcast(buffers, group, root=0)
        for r in group:
            np.testing.assert_array_equal(out[r], src)
        # Exactly one internal all-gather, over 1/p shards of the payload.
        assert calls == [(p, src.size // p)]

    def test_telemetry_counts_broadcast_once(self):
        from repro.telemetry import Tracer, telemetry_scope

        group = ProcessGroup((0, 1, 2, 3))
        src = np.ones((8, 2))
        buffers = {r: src.copy() for r in group}
        tr = Tracer()
        with telemetry_scope(tr):
            broadcast(buffers, group, root=0)
        # The composite reports once; the internal all-gather is silent.
        assert tr.metrics.value("comm.calls.broadcast") == 1
        assert tr.metrics.value("comm.bytes.broadcast") == src.nbytes
        assert tr.metrics.value("comm.calls.all_gather", default=0) == 0
