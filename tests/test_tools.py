"""Tests for the command-line tools."""

import pytest

from repro.tools import memory_report, plan


class TestPlanCLI:
    def test_plan_runs_and_prints_table(self, capsys):
        rc = plan.main(["GPT-5B", "64", "frontier", "--top", "3", "--batch", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "planning GPT-5B on 64" in out
        assert "Gx=" in out
        # Exactly 3 ranked rows.
        rows = [l for l in out.splitlines() if l.strip().startswith(("1 ", "2 ", "3 ", "4 "))]
        assert len(rows) == 3

    def test_plan_infeasible_model(self, capsys):
        rc = plan.main(["GPT-640B", "8", "perlmutter", "--batch", "8"])
        assert rc == 1
        assert "no feasible configuration" in capsys.readouterr().out

    def test_plan_bad_model(self):
        with pytest.raises(KeyError):
            plan.main(["GPT-7B", "64", "frontier"])


class TestMemoryReportCLI:
    def test_fits(self, capsys):
        rc = memory_report.main(
            ["GPT-5B", "1,1,8,1", "frontier", "--batch", "8"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "FITS" in out
        assert "weights (bf16)" in out
        assert "largest per-replica batch" in out

    def test_does_not_fit(self, capsys):
        rc = memory_report.main(["GPT-80B", "1,1,1,8", "perlmutter"])
        assert rc == 1
        assert "DOES NOT FIT" in capsys.readouterr().out

    def test_no_checkpointing_flag(self, capsys):
        memory_report.main(
            ["GPT-5B", "1,1,8,1", "frontier", "--batch", "8", "--no-checkpointing"]
        )
        assert "checkpointing off" in capsys.readouterr().out

    def test_bad_grid_string(self):
        with pytest.raises(SystemExit):
            memory_report.main(["GPT-5B", "1,2,3", "frontier"])


class TestTraceViewCLI:
    def test_renders_gantt_and_breakdown(self, capsys):
        from repro.tools import trace_view

        rc = trace_view.main(
            ["GPT-5B", "2,1,4,2", "frontier", "--batch", "32", "--width", "40"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "compute" in out and "#" in out
        assert "hidden comm" in out

    def test_no_overlap_flag(self, capsys):
        from repro.tools import trace_view

        trace_view.main(
            ["GPT-5B", "1,1,4,2", "frontier", "--batch", "16", "--no-overlap"]
        )
        assert "overlap OFF" in capsys.readouterr().out

    def test_bad_grid(self):
        from repro.tools import trace_view

        with pytest.raises(SystemExit):
            trace_view.main(["GPT-5B", "2,2", "frontier"])


class TestApiDocsGenerator:
    def test_generates_reference(self, tmp_path):
        from repro.tools import gen_api_docs

        out = tmp_path / "API.md"
        rc = gen_api_docs.main([str(out)])
        assert rc == 0
        text = out.read_text()
        assert "# API reference" in text
        assert "## `repro.core`" in text
        assert "`ParallelGPT`" in text
        # Every listed package appears.
        for name in gen_api_docs.PACKAGES:
            assert f"## `{name}`" in text

    def test_render_covers_all_exports(self):
        import importlib

        from repro.tools.gen_api_docs import PACKAGES, render

        text = render()
        for name in PACKAGES:
            mod = importlib.import_module(name)
            for sym in getattr(mod, "__all__", []):
                assert f"`{sym}`" in text
