"""Tests for the command-line tools."""

import pytest

from repro.tools import memory_report, plan


class TestPlanCLI:
    def test_plan_runs_and_prints_table(self, capsys):
        rc = plan.main(["GPT-5B", "64", "frontier", "--top", "3", "--batch", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "planning GPT-5B on 64" in out
        assert "Gx=" in out
        # Exactly 3 ranked rows.
        rows = [l for l in out.splitlines() if l.strip().startswith(("1 ", "2 ", "3 ", "4 "))]
        assert len(rows) == 3

    def test_plan_infeasible_model(self, capsys):
        rc = plan.main(["GPT-640B", "8", "perlmutter", "--batch", "8"])
        assert rc == 1
        assert "no feasible configuration" in capsys.readouterr().out

    def test_plan_bad_model(self):
        with pytest.raises(KeyError):
            plan.main(["GPT-7B", "64", "frontier"])


class TestMemoryReportCLI:
    def test_fits(self, capsys):
        rc = memory_report.main(
            ["GPT-5B", "1,1,8,1", "frontier", "--batch", "8"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "FITS" in out
        assert "weights (bf16)" in out
        assert "largest per-replica batch" in out

    def test_does_not_fit(self, capsys):
        rc = memory_report.main(["GPT-80B", "1,1,1,8", "perlmutter"])
        assert rc == 1
        assert "DOES NOT FIT" in capsys.readouterr().out

    def test_no_checkpointing_flag(self, capsys):
        memory_report.main(
            ["GPT-5B", "1,1,8,1", "frontier", "--batch", "8", "--no-checkpointing"]
        )
        assert "checkpointing off" in capsys.readouterr().out

    def test_bad_grid_string(self):
        with pytest.raises(SystemExit):
            memory_report.main(["GPT-5B", "1,2,3", "frontier"])


class TestTraceViewCLI:
    def test_renders_gantt_and_breakdown(self, capsys):
        from repro.tools import trace_view

        rc = trace_view.main(
            ["GPT-5B", "2,1,4,2", "frontier", "--batch", "32", "--width", "40"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "compute" in out and "#" in out
        assert "hidden comm" in out

    def test_no_overlap_flag(self, capsys):
        from repro.tools import trace_view

        trace_view.main(
            ["GPT-5B", "1,1,4,2", "frontier", "--batch", "16", "--no-overlap"]
        )
        assert "overlap OFF" in capsys.readouterr().out

    def test_bad_grid(self):
        from repro.tools import trace_view

        with pytest.raises(SystemExit):
            trace_view.main(["GPT-5B", "2,2", "frontier"])


class TestApiDocsGenerator:
    def test_generates_reference(self, tmp_path):
        from repro.tools import gen_api_docs

        out = tmp_path / "API.md"
        rc = gen_api_docs.main([str(out)])
        assert rc == 0
        text = out.read_text()
        assert "# API reference" in text
        assert "## `repro.core`" in text
        assert "`ParallelGPT`" in text
        # Every listed package appears.
        for name in gen_api_docs.PACKAGES:
            assert f"## `{name}`" in text

    def test_render_covers_all_exports(self):
        import importlib

        from repro.tools.gen_api_docs import PACKAGES, render

        text = render()
        for name in PACKAGES:
            mod = importlib.import_module(name)
            for sym in getattr(mod, "__all__", []):
                assert f"`{sym}`" in text

    def test_covers_new_subsystems(self):
        from repro.tools.gen_api_docs import PACKAGES

        assert "repro.telemetry" in PACKAGES
        assert "repro.tools" in PACKAGES


class TestDispatcher:
    def test_every_subcommand_resolves_to_a_main(self):
        import importlib

        from repro.tools import SUBCOMMANDS

        for sub, (module_name, _) in SUBCOMMANDS.items():
            mod = importlib.import_module(f"repro.tools.{module_name}")
            assert callable(mod.main), f"{sub} -> {module_name} lacks main()"

    def test_dispatch_forwards_argv(self, capsys):
        from repro.tools import main

        rc = main(["memory", "GPT-5B", "1,1,8,1", "frontier", "--batch", "8"])
        assert rc == 0
        assert "FITS" in capsys.readouterr().out

    def test_unknown_subcommand_rejected(self):
        from repro.tools import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_deprecated_entry_warns_and_forwards(self, capsys):
        from repro.tools import _deprecated_entry, memory_report

        with pytest.warns(DeprecationWarning, match="repro.tools memory"):
            rc = _deprecated_entry(
                "memory_report", "memory", memory_report.main,
                ["GPT-5B", "1,1,8,1", "frontier", "--batch", "8"],
            )
        assert rc == 0


class TestProfileRun:
    def test_profile_run_tiny_emits_artifacts(self, tmp_path, capsys):
        import json

        from repro.telemetry import BENCH_SCHEMA, validate_chrome_trace
        from repro.tools import profile_run

        rc = profile_run.main(
            ["run", "--config", "tiny", "--out", str(tmp_path),
             "--steps", "2", "--name", "unit"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry overhead" in out
        assert "==" in out  # volume cross-check printed as equal

        trace = json.loads((tmp_path / "trace_unit.json").read_text())
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["volume_ok"] is True

        bench = json.loads((tmp_path / "BENCH_unit.json").read_text())
        assert bench["schema"] == BENCH_SCHEMA
        assert bench["metrics"]["comm.calls.all_reduce"] > 0
        assert bench["metrics"]["profile.steps"] == 2
        # Byte counters in the artifact equal the analytic volumes.
        check = bench["meta"]["volume_check"]
        for entry in check.values():
            assert entry["traced"] == pytest.approx(entry["analytic"])

    def test_requires_subcommand(self):
        from repro.tools import profile_run

        with pytest.raises(SystemExit):
            profile_run.main([])

    def test_absurd_overhead_gate_fails(self, tmp_path, capsys):
        from repro.tools import profile_run

        rc = profile_run.main(
            ["run", "--config", "tiny", "--out", str(tmp_path),
             "--steps", "1", "--max-overhead-pct", "-1000"]
        )
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out


class TestOutFlags:
    def test_trace_view_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_chrome_trace
        from repro.tools import trace_view

        out = tmp_path / "sim.json"
        rc = trace_view.main(
            ["GPT-5B", "1,1,4,2", "frontier", "--batch", "16",
             "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["machine"] == "frontier"
        tids = {e["tid"] for e in doc["traceEvents"]}
        assert "compute" in tids

    def test_memory_report_out_writes_bench_json(self, tmp_path):
        import json

        from repro.tools import memory_report

        memory_report.main(
            ["GPT-5B", "1,1,8,1", "frontier", "--batch", "8",
             "--out", str(tmp_path)]
        )
        doc = json.loads((tmp_path / "BENCH_memory.json").read_text())
        assert doc["metrics"]["mem.bytes.total"] > 0
        assert doc["meta"]["fits"] is True
