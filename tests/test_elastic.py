"""Elastic-grid recovery: shrink onto survivors, buddy replicas, grow.

The acceptance properties of the elastic subsystem, each pinned with
its defense-disabled twin:

* a single-rank kill recovers from the buddy replica with **zero disk
  reads** and zero lost steps (with replication disabled the same kill
  must fall back to disk and lose steps);
* a buddy-pair kill (correlated failure) falls back to the newest ring
  checkpoint **that verifies** — a deliberately corrupted newest file
  is skipped;
* post-shrink losses are **bitwise identical** to a fresh run on the
  shrunken grid from the same state (the canonical-layout reshard is
  exact, for moments as much as weights);
* reshard round-trips across unequal, non-power-of-two grids
  (8 -> 6 -> 8) preserve state bit-for-bit.
"""

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.core import (
    CheckpointRing,
    Grid4D,
    GridConfig,
    ParallelGPT,
    gather_training_arrays,
    grid_fits,
    load_training_arrays,
    reshard,
    shrink_grid,
    train_elastic,
)
from repro.nn import GPT, AdamW, MixedPrecisionTrainer
from repro.runtime import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RankFailure,
    ReplicaStore,
    default_buddies,
)


def tiny_cfg(layers=1):
    # hidden 24 / heads 4 / vocab 32 divide evenly on both the 8-rank
    # (2, 2, 2, 1) grid and its 6-rank shrink target (1, 2, 3, 1).
    return GPTConfig(
        name="elastic", num_layers=layers, hidden_size=24, num_heads=4,
        seq_len=10, vocab_size=32,
    )


GRID8 = GridConfig(2, 2, 2, 1)
BATCH = 12  # divisible by gz*gdata of every grid the tests use


def make_batches(cfg, n=4, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, cfg.vocab_size, (BATCH, 8)) for _ in range(n)]


def factory_for(cfg):
    def factory(grid_config):
        model = ParallelGPT(Grid4D(grid_config), cfg, seed=0)
        opt = AdamW(model.parameters(), lr=1e-3)
        return MixedPrecisionTrainer(model, opt)

    return factory


def from_serial_factory(cfg):
    """Factory whose parallel model carries the *serial* seed-0 weights
    (``ParallelGPT(grid, cfg, seed)`` draws its own shard-order RNG
    stream, so only ``from_serial`` models are serial-comparable)."""

    def factory(grid_config):
        model = ParallelGPT.from_serial(GPT(cfg, seed=0), Grid4D(grid_config))
        opt = AdamW(model.parameters(), lr=1e-3)
        return MixedPrecisionTrainer(model, opt)

    return factory


class TestShrinkPlanner:
    def test_prefers_largest_fitting_count(self):
        cfg = tiny_cfg()
        assert shrink_grid(cfg, 8, GRID8, BATCH).total == 8

    def test_non_power_of_two_subgrid(self):
        """6 survivors of an 8-rank grid must form a 6-rank grid, not
        collapse to the next power of two."""
        cfg = tiny_cfg()
        got = shrink_grid(cfg, 6, GRID8, BATCH)
        assert got.total == 6
        assert got.dims == (1, 2, 3, 1)

    def test_skips_counts_with_no_valid_factorization(self):
        """7 is prime and fits no axis (heads, hidden, batch all
        indivisible by 7): the planner must fall through to 6."""
        cfg = tiny_cfg()
        assert shrink_grid(cfg, 7, GRID8, BATCH).total == 6

    def test_prefers_axis_overlap_with_old_grid(self):
        cfg = tiny_cfg()
        got = shrink_grid(cfg, 4, GRID8, BATCH)
        assert got.total == 4
        # Shares two axis sizes with (2, 2, 2, 1).
        assert sum(a == b for a, b in zip(got.dims, GRID8.dims)) >= 2

    def test_deterministic(self):
        cfg = tiny_cfg()
        assert shrink_grid(cfg, 6, GRID8, BATCH) == shrink_grid(
            cfg, 6, GRID8, BATCH
        )

    def test_hostile_dims_fall_back_to_single_rank(self):
        """Awkward dimensions (prime-ish hidden/heads) still shrink:
        the 1-rank grid always fits, so the planner never dead-ends for
        a positive rank budget."""
        cfg = GPTConfig(
            name="odd", num_layers=1, hidden_size=23, num_heads=23,
            seq_len=8, vocab_size=29,
        )
        got = shrink_grid(cfg, 5, GridConfig(1, 1, 1, 1), global_batch=1)
        assert got.total == 1
        with pytest.raises(ValueError, match="max_ranks"):
            shrink_grid(cfg, 0, GridConfig(1, 1, 1, 1))

    def test_grid_fits_matches_construction(self):
        """grid_fits' analytic checks agree with actually building the
        model, for every factorization of 6 and 8."""
        from repro.core import enumerate_grid_configs

        cfg = tiny_cfg()
        for n in (6, 8):
            for gc in enumerate_grid_configs(n, powers_of_two_only=False):
                fits = grid_fits(cfg, gc)
                try:
                    ParallelGPT(Grid4D(gc), cfg, seed=0)
                    built = True
                except ValueError:
                    built = False
                assert fits == built, f"{gc.dims}: fits={fits} built={built}"


class TestReshardRoundTrip:
    def test_8_to_6_to_8_bitwise(self):
        """Full state (weights + moments) survives 8 -> 6 -> 8 through
        the canonical layout, bit for bit, non-power-of-two middle."""
        cfg = tiny_cfg()
        trainer = factory_for(cfg)(GRID8)
        for ids in make_batches(cfg, n=2):
            trainer.step(ids)
        ref = gather_training_arrays(trainer.model, trainer.optimizer)

        small = factory_for(cfg)(GridConfig(1, 2, 3, 1))
        load_training_arrays(small.model, small.optimizer, ref)
        back = factory_for(cfg)(GRID8)
        load_training_arrays(
            back.model,
            back.optimizer,
            gather_training_arrays(small.model, small.optimizer),
        )
        out = gather_training_arrays(back.model, back.optimizer)
        assert set(out) == set(ref)
        for k in ref:
            np.testing.assert_array_equal(out[k], ref[k], err_msg=k)

    def test_reshard_weights_match_serial(self):
        cfg = tiny_cfg()
        model = ParallelGPT(Grid4D(GRID8), cfg, seed=3)
        ref = model.gather_state_to_serial().state_dict()
        small = reshard(model, Grid4D(GridConfig(1, 2, 3, 1)))
        got = small.gather_state_to_serial().state_dict()
        for k in ref:
            np.testing.assert_array_equal(got[k], ref[k], err_msg=k)

    def test_loss_curve_continues_across_reshard(self):
        """Train 2 steps on 8 ranks, reshard to 6, train 2 more: the
        combined curve equals the serial model's 4-step curve (the
        parallel algorithm is serial-equivalent on every grid)."""
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=4)

        serial = GPT(cfg, seed=0)
        sopt = AdamW(serial.parameters(), lr=1e-3)
        st = MixedPrecisionTrainer(serial, sopt)
        ref = [st.step(ids) for ids in batches]

        big = from_serial_factory(cfg)(GRID8)
        got = [big.step(ids) for ids in batches[:2]]
        small = from_serial_factory(cfg)(GridConfig(1, 2, 3, 1))
        load_training_arrays(
            small.model,
            small.optimizer,
            gather_training_arrays(big.model, big.optimizer),
        )
        got += [small.step(ids) for ids in batches[2:]]
        np.testing.assert_allclose(got, ref, rtol=1e-7, atol=0)


class TestBuddyRecovery:
    def test_single_kill_recovers_from_buddy_zero_disk(self, tmp_path):
        """Rank 3 dies; its buddy (rank 2) holds the replica.  Recovery
        must touch no disk (no ring is even provided), lose no steps,
        and continue the uninterrupted loss curve exactly."""
        cfg = tiny_cfg()
        batches = make_batches(cfg)
        factory = factory_for(cfg)

        ref = train_elastic(factory, GRID8, batches, global_batch=BATCH)
        assert ref.recoveries == 0 and len(ref.losses) == len(batches)

        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=3, step=2),)))
        rep = train_elastic(
            factory, GRID8, batches, injector=inj, global_batch=BATCH,
        )  # ring=None: any disk fallback would raise instead
        assert rep.buddy_restores == 1
        assert rep.disk_restores == 0
        assert rep.steps_lost == 0
        assert rep.restart_causes["kill"] == 1
        # Pre-shrink losses match the no-fault run bit for bit.
        assert rep.losses[:2] == ref.losses[:2]
        assert rep.final_config.total == 6

    def test_defense_disabled_kill_needs_disk_and_loses_steps(self, tmp_path):
        """Same kill with replication off: recovery must fall back to
        the ring and replay the steps since the last checkpoint."""
        cfg = tiny_cfg()
        batches = make_batches(cfg)
        factory = factory_for(cfg)
        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=3, step=3),)))
        ring = CheckpointRing(tmp_path, keep=3)
        rep = train_elastic(
            factory, GRID8, batches, injector=inj, ring=ring,
            replicate=False, checkpoint_interval=2, global_batch=BATCH,
        )
        assert rep.buddy_restores == 0
        assert rep.disk_restores == 1
        assert rep.steps_lost == 1  # killed at step 3, checkpoint at 2
        assert ring.stats["reads"] == 1

    def test_defense_disabled_and_no_ring_propagates(self):
        cfg = tiny_cfg()
        factory = factory_for(cfg)
        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=3, step=1),)))
        with pytest.raises(RankFailure):
            train_elastic(
                factory, GRID8, make_batches(cfg), injector=inj,
                replicate=False, global_batch=BATCH,
            )

    def test_replica_store_wipe_then_restore_roundtrip(self):
        """Unit-level: wipe NaNs the dead rank's shards; restore brings
        back the exact bytes; a dead buddy pair refuses."""
        cfg = tiny_cfg()
        trainer = factory_for(cfg)(GRID8)
        trainer.step(make_batches(cfg, n=1)[0])
        store = ReplicaStore(trainer.model, trainer.optimizer)
        store.commit()
        before = {
            n: p.data.copy() for n, p in trainer.model.named_parameters()
        }

        assert store.wipe([3]) > 0
        wiped_some = any(
            np.isnan(p.data).any()
            for _, p in trainer.model.named_parameters()
        )
        assert wiped_some  # defense-disabled view: state really is gone
        store.restore([3])
        for n, p in trainer.model.named_parameters():
            np.testing.assert_array_equal(p.data, before[n], err_msg=n)

        assert not store.can_restore([2, 3])  # 2 and 3 are buddies
        with pytest.raises(LookupError, match="buddy pair"):
            store.restore([2, 3])

    def test_default_buddies_pairing(self):
        assert default_buddies(8) == {
            0: 1, 1: 0, 2: 3, 3: 2, 4: 5, 5: 4, 6: 7, 7: 6,
        }
        odd = default_buddies(5)
        assert odd[4] == 0 and all(odd[r] != r for r in odd)
        with pytest.raises(ValueError):
            default_buddies(1)


class TestCorrelatedFailure:
    def test_buddy_pair_kill_falls_back_to_verifying_checkpoint(
        self, tmp_path
    ):
        """Ranks 2+3 (a buddy pair) die together: the replica layer is
        defeated, and the newest ring checkpoint has been deliberately
        corrupted — recovery must skip it and restore from the older
        checkpoint that verifies."""
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=5)
        factory = factory_for(cfg)
        inj = FaultInjector(
            FaultPlan(
                (
                    FaultSpec("kill", rank=2, step=3),
                    FaultSpec("kill", rank=3, step=3),
                    # And the newest checkpoint (save 0 is step 0; saves
                    # 1..3 are steps 1..3) is silently corrupted on disk.
                    FaultSpec("corrupt_checkpoint", match=3),
                )
            )
        )
        ring = CheckpointRing(tmp_path, keep=4)
        rep = train_elastic(
            factory, GRID8, batches, injector=inj, ring=ring,
            checkpoint_interval=1, global_batch=BATCH,
        )
        assert rep.buddy_restores == 0
        assert rep.disk_restores == 1
        assert ring.stats["skipped_corrupt"] >= 1  # corrupted newest skipped
        assert rep.steps_lost >= 1  # rolled past the corrupted save
        assert rep.final_config.total == 6
        assert len(rep.losses) == len(batches)

    def test_correlated_failure_without_ring_propagates(self):
        cfg = tiny_cfg()
        factory = factory_for(cfg)
        inj = FaultInjector(
            FaultPlan(
                (
                    FaultSpec("kill", rank=2, step=1),
                    FaultSpec("kill", rank=3, step=1),
                )
            )
        )
        with pytest.raises(RankFailure):
            train_elastic(
                factory, GRID8, make_batches(cfg), injector=inj,
                global_batch=BATCH,
            )


class TestShrinkContinue:
    def test_post_shrink_losses_bitwise_equal_fresh_small_grid_run(self):
        """THE elastic acceptance property: after the shrink, every loss
        is bitwise identical to a fresh trainer built on the small grid
        and loaded with the same state — the transition is invisible."""
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=5)
        factory = factory_for(cfg)

        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=3, step=2),)))
        rep = train_elastic(
            factory, GRID8, batches, injector=inj, global_batch=BATCH,
        )
        assert rep.shrinks == 1
        shrink_step, small_config = rep.grid_history[-1]
        assert shrink_step == 2 and small_config.total == 6

        # Fresh reference: train the *same state* on the small grid from
        # the shrink point, built independently of the elastic machinery.
        ref_trainer = factory(GRID8)
        for ids in batches[:shrink_step]:
            ref_trainer.step(ids)
        small = factory(small_config)
        load_training_arrays(
            small.model,
            small.optimizer,
            gather_training_arrays(ref_trainer.model, ref_trainer.optimizer),
        )
        ref_tail = [small.step(ids) for ids in batches[shrink_step:]]
        assert rep.losses[shrink_step:] == ref_tail  # bitwise: == on floats

    def test_serial_equivalence_end_to_end(self):
        """The whole faulted elastic run still tracks the serial curve
        to fp tolerance (shrink included)."""
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=5)

        serial = GPT(cfg, seed=0)
        st = MixedPrecisionTrainer(serial, AdamW(serial.parameters(), lr=1e-3))
        ref = [st.step(ids) for ids in batches]

        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=1, step=2),)))
        rep = train_elastic(
            from_serial_factory(cfg), GRID8, batches, injector=inj,
            global_batch=BATCH,
        )
        np.testing.assert_allclose(rep.losses, ref, rtol=1e-7, atol=0)


class TestGrow:
    def test_grow_back_to_full_grid(self, tmp_path):
        """Shrink at step 1, grow back at step 3: the run ends on the
        full grid and the curve still matches the no-fault run."""
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=5)
        factory = factory_for(cfg)

        ref = train_elastic(factory, GRID8, batches, global_batch=BATCH)

        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=5, step=1),)))
        rep = train_elastic(
            factory, GRID8, batches, injector=inj, grow_step=3,
            global_batch=BATCH,
        )
        assert rep.shrinks == 1 and rep.grows == 1
        assert rep.final_config == GRID8
        assert [s for s, _ in rep.grid_history] == [0, 1, 3]
        # Pre-shrink steps ran on the identical grid: bitwise equal.
        assert rep.losses[:1] == ref.losses[:1]
        # Steps on/after the small grid reduce in a different order, so
        # equality is up to fp summation order (bitwise same-grid
        # equality is pinned in TestShrinkContinue).
        np.testing.assert_allclose(rep.losses, ref.losses, rtol=1e-10, atol=0)

    def test_grow_without_shrink_is_noop(self):
        cfg = tiny_cfg()
        rep = train_elastic(
            factory_for(cfg), GRID8, make_batches(cfg, n=3), grow_step=1,
            global_batch=BATCH,
        )
        assert rep.grows == 0
        assert rep.grid_history == [(0, GRID8)]


class TestTransientFaults:
    def test_torn_ring_write_recovers_in_place(self, tmp_path):
        """A torn checkpoint write mid-run is a transient (no dead rank)
        fault: recovery re-forms the *same* grid from the intact
        in-memory masters — no shrink, no disk restore, no lost steps —
        and the loss curve is bitwise identical to the no-fault run."""
        cfg = tiny_cfg()
        batches = make_batches(cfg)
        factory = factory_for(cfg)
        ref = train_elastic(factory, GRID8, batches, global_batch=BATCH)

        inj = FaultInjector(FaultPlan((FaultSpec("torn_write", match=2),)))
        ring = CheckpointRing(tmp_path, keep=8)
        rep = train_elastic(
            factory, GRID8, batches, injector=inj, ring=ring,
            checkpoint_interval=1, global_batch=BATCH,
        )
        assert inj.stats["torn_writes"] == 1
        assert rep.restart_causes["corruption"] == 1
        assert rep.shrinks == 0
        assert rep.disk_restores == 0
        assert rep.steps_lost == 0
        assert rep.final_config == GRID8
        assert rep.losses == ref.losses  # bitwise: same grid throughout
        assert len(rep.losses) == len(batches)
