"""Test-tier bookkeeping.

Every test under ``tests/`` that is not explicitly marked ``slow`` is
tier 1: the fast correctness suite run on every commit (and in CI via
``pytest -m tier1``; since tier 1 is the default, a plain ``pytest``
run is equivalent).  Benchmarks under ``benchmarks/`` are all ``slow``
— see ``benchmarks/conftest.py``.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.tier1)
