"""Package-integrity tests: the public API surface is importable, every
``__all__`` entry resolves, and the facade wires together."""

import importlib

import numpy as np
import pytest

PACKAGES = [
    "repro",
    "repro.config",
    "repro.cluster",
    "repro.runtime",
    "repro.tensor",
    "repro.nn",
    "repro.core",
    "repro.perfmodel",
    "repro.kernels",
    "repro.simulate",
    "repro.pipeline",
    "repro.moe",
    "repro.memorization",
    "repro.telemetry",
    "repro.tools",
    "repro.tools.plan",
    "repro.tools.memory_report",
    "repro.tools.trace_view",
    "repro.tools.reproduce",
    "repro.tools.profile_run",
    "repro.tools.goodput_report",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    for sym in exported:
        assert hasattr(mod, sym), f"{name}.__all__ lists missing {sym!r}"
        assert getattr(mod, sym) is not None


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_facade_end_to_end():
    """The README quickstart, condensed: init, parallelize, train, match."""
    from repro import axonn_init
    from repro.config import GPTConfig
    from repro.core import ParallelGPT
    from repro.nn import GPT

    cfg = GPTConfig(
        name="api", num_layers=1, hidden_size=16, num_heads=4,
        seq_len=8, vocab_size=32,
    )
    ctx = axonn_init(gx=2, gy=1, gz=1, gdata=1)
    serial = GPT(cfg, seed=0)
    par = ParallelGPT.from_serial(serial, ctx.grid)
    ids = np.random.default_rng(0).integers(0, 32, (2, 6))
    assert par.loss(ids).item() == pytest.approx(
        serial.loss(ids).item(), rel=1e-10
    )
    # The context's tracer observed the tensor-parallel collectives.
    assert any(r.tag == "linear.AR_x" for r in ctx.tracer.records)


def test_facade_trace_toggle():
    from repro import axonn_init

    ctx = axonn_init(1, 1, 2, 1, trace=False)
    assert not ctx.tracer.enabled


def test_every_docstringed_module():
    """Every package/module ships a docstring (the documentation bar)."""
    for name in PACKAGES:
        mod = importlib.import_module(name)
        assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a docstring"


class TestFacade:
    def test_star_import_matches_all(self):
        import repro

        ns = {}
        exec("from repro import *", ns)
        missing = [n for n in repro.__all__ if n not in ns]
        assert not missing, f"star-import missing {missing}"

    def test_blessed_entry_points_are_the_canonical_objects(self):
        import repro
        import repro.core
        import repro.nn.training as training
        import repro.telemetry as telemetry

        assert repro.train_with_recovery is training.train_with_recovery
        assert repro.train_elastic is repro.core.train_elastic
        assert repro.TrainingReport is training.TrainingReport
        assert repro.Tracer is telemetry.Tracer
        assert repro.telemetry_scope is telemetry.telemetry_scope

    def test_subpackages_declare_all(self):
        for name in PACKAGES:
            mod = importlib.import_module(name)
            assert getattr(mod, "__all__", None), f"{name} lacks __all__"


class TestDeprecationShims:
    @pytest.mark.parametrize("module", ["repro", "repro.core"])
    def test_old_init_resolves_and_warns_exactly_once(self, module):
        import warnings

        mod = importlib.import_module(module)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            obj = mod.init
        assert obj is mod.axonn_init
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "axonn_init" in str(deprecations[0].message)

    def test_old_name_not_in_all(self):
        import repro
        import repro.core

        assert "init" not in repro.__all__
        assert "init" not in repro.core.__all__

    @pytest.mark.parametrize("module", ["repro", "repro.core"])
    def test_unknown_attribute_still_raises(self, module):
        mod = importlib.import_module(module)
        with pytest.raises(AttributeError):
            mod.definitely_not_a_symbol


class TestSignatureContracts:
    def test_train_with_recovery_tuning_params_keyword_only(self):
        from repro import train_with_recovery

        with pytest.raises(TypeError):
            train_with_recovery(lambda: None, [], "x.npz", 1)

    def test_train_elastic_tuning_params_keyword_only(self):
        from repro import train_elastic
        from repro.core import GridConfig

        with pytest.raises(TypeError):
            train_elastic(lambda c: None, GridConfig(1, 1, 1), [], None)

    def test_checkpoint_save_flags_keyword_only(self):
        import inspect

        from repro.core import save_checkpoint, save_training_state

        for fn in (save_checkpoint, save_training_state):
            params = inspect.signature(fn).parameters
            assert params["atomic"].kind is inspect.Parameter.KEYWORD_ONLY
            assert params["injector"].kind is inspect.Parameter.KEYWORD_ONLY

    def test_reports_share_base_and_to_json(self):
        from repro import ElasticReport, RecoveryReport, TrainingReport

        assert issubclass(RecoveryReport, TrainingReport)
        assert issubclass(ElasticReport, TrainingReport)
        rep = RecoveryReport(losses=[1.0, 0.5], restarts=2)
        doc = rep.to_json()
        assert doc["steps"] == 2
        assert doc["restarts"] == 2
        import json

        json.dumps(doc)  # round-trips through JSON
