"""Package-integrity tests: the public API surface is importable, every
``__all__`` entry resolves, and the facade wires together."""

import importlib

import numpy as np
import pytest

PACKAGES = [
    "repro",
    "repro.config",
    "repro.cluster",
    "repro.runtime",
    "repro.tensor",
    "repro.nn",
    "repro.core",
    "repro.perfmodel",
    "repro.kernels",
    "repro.simulate",
    "repro.pipeline",
    "repro.moe",
    "repro.memorization",
    "repro.tools.plan",
    "repro.tools.memory_report",
    "repro.tools.trace_view",
    "repro.tools.reproduce",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    for sym in exported:
        assert hasattr(mod, sym), f"{name}.__all__ lists missing {sym!r}"
        assert getattr(mod, sym) is not None


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_facade_end_to_end():
    """The README quickstart, condensed: init, parallelize, train, match."""
    from repro import axonn_init
    from repro.config import GPTConfig
    from repro.core import ParallelGPT
    from repro.nn import GPT

    cfg = GPTConfig(
        name="api", num_layers=1, hidden_size=16, num_heads=4,
        seq_len=8, vocab_size=32,
    )
    ctx = axonn_init(gx=2, gy=1, gz=1, gdata=1)
    serial = GPT(cfg, seed=0)
    par = ParallelGPT.from_serial(serial, ctx.grid)
    ids = np.random.default_rng(0).integers(0, 32, (2, 6))
    assert par.loss(ids).item() == pytest.approx(
        serial.loss(ids).item(), rel=1e-10
    )
    # The context's tracer observed the tensor-parallel collectives.
    assert any(r.tag == "linear.AR_x" for r in ctx.tracer.records)


def test_facade_trace_toggle():
    from repro import axonn_init

    ctx = axonn_init(1, 1, 2, 1, trace=False)
    assert not ctx.tracer.enabled


def test_every_docstringed_module():
    """Every package/module ships a docstring (the documentation bar)."""
    for name in PACKAGES:
        mod = importlib.import_module(name)
        assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a docstring"
