"""Tests for the two-level hierarchical collectives and the
flat-vs-hierarchical algorithm selector.

Bitwise-equality tests use integer-valued float64 payloads: every
partial sum is exactly representable, so any summation order produces
identical bits (data-movement collectives and ``max``/``min`` are
bitwise-exact for arbitrary payloads).  Rounding-tolerance tests cover
general floating-point and bf16 payloads — the contract real NCCL
offers across algorithm choices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import FRONTIER, PERLMUTTER, GPUSpec, MachineSpec, Placement
from repro.config import GPTConfig
from repro.core import Grid4D, GridConfig, ParallelGPT
from repro.perfmodel import choose_algorithm
from repro.perfmodel.hierarchical import flat_time, hierarchical_time
from repro.runtime import (
    CommTracer,
    ProcessGroup,
    all_gather,
    all_reduce,
    assert_valid_schedule,
    broadcast,
    collective_policy_scope,
    decompose_by_node,
    get_active_policy,
    hierarchical_all_gather,
    hierarchical_all_reduce,
    hierarchical_broadcast,
    hierarchical_reduce_scatter,
    reduce_scatter,
)
from repro.tensor.dtype import to_bf16


def toy_machine(gpus_per_node: int = 2, total: int = 64) -> MachineSpec:
    return MachineSpec(
        name=f"toy-{gpus_per_node}pn",
        gpu=GPUSpec("toy", 1e15, 5e14, 4e10),
        gpus_per_node=gpus_per_node,
        intra_node_bw=1e11,
        inter_node_bw=1e11,
        total_gpus=total,
    )


def int_buffers(group: ProcessGroup, shape, seed=0) -> dict:
    """Integer-valued fp64 buffers — exact under any summation order."""
    rng = np.random.default_rng(seed)
    return {
        r: rng.integers(-8, 9, shape).astype(np.float64) for r in group
    }


class TestDecompose:
    def test_block_placement(self):
        machine = toy_machine(gpus_per_node=4)
        placement = Placement(machine, 8)
        dec = decompose_by_node(range(8), placement)
        assert dec is not None
        assert (dec.L, dec.Q) == (4, 2)
        assert [g.ranks for g in dec.node_groups] == [(0, 1, 2, 3), (4, 5, 6, 7)]
        assert [g.ranks for g in dec.cross_groups] == [
            (0, 4), (1, 5), (2, 6), (3, 7)
        ]

    def test_round_robin_placement(self):
        machine = toy_machine(gpus_per_node=4)
        placement = Placement(machine, 8, strategy="round_robin")
        dec = decompose_by_node(range(8), placement)
        assert dec is not None
        assert (dec.L, dec.Q) == (4, 2)
        assert [g.ranks for g in dec.node_groups] == [(0, 2, 4, 6), (1, 3, 5, 7)]

    def test_single_node_group_is_flat(self):
        placement = Placement(toy_machine(gpus_per_node=8), 8)
        assert decompose_by_node(range(8), placement) is None

    def test_one_member_per_node_is_flat(self):
        """L=1: the leaders ring would just be the flat ring again."""
        placement = Placement(toy_machine(gpus_per_node=2), 8)
        assert decompose_by_node([0, 2, 4, 6], placement) is None

    def test_uneven_spread_is_flat(self):
        placement = Placement(toy_machine(gpus_per_node=4), 8)
        assert decompose_by_node([0, 1, 2, 4], placement) is None

    def test_rank_outside_placement_is_flat(self):
        placement = Placement(toy_machine(), 4)
        assert decompose_by_node([0, 1, 2, 99], placement) is None


class TestBitwiseEquivalence:
    """The two-level algorithms must reproduce the flat ring's results
    bit for bit (exact payloads) across group shapes and placements."""

    @given(
        gpn=st.sampled_from([2, 3, 4]),
        nodes=st.sampled_from([2, 3]),
        strategy=st.sampled_from(["block", "round_robin"]),
        cols=st.integers(1, 3),
        op=st.sampled_from(["sum", "max", "min"]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_reduce_matches_flat(self, gpn, nodes, strategy, cols, op, seed):
        p = gpn * nodes
        if strategy == "round_robin" and p % nodes:
            return
        placement = Placement(toy_machine(gpn), p, strategy=strategy)
        group = ProcessGroup(tuple(range(p)))
        buffers = int_buffers(group, (5, cols), seed)
        flat = all_reduce(buffers, group, op=op)
        hier = hierarchical_all_reduce(buffers, group, placement, op=op)
        for r in group:
            np.testing.assert_array_equal(hier[r], flat[r])

    @given(
        gpn=st.sampled_from([2, 4]),
        nodes=st.sampled_from([2, 3]),
        strategy=st.sampled_from(["block", "round_robin"]),
        blocks=st.integers(1, 2),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_reduce_scatter_matches_flat(self, gpn, nodes, strategy, blocks, seed):
        p = gpn * nodes
        if strategy == "round_robin" and p % nodes:
            return
        placement = Placement(toy_machine(gpn), p, strategy=strategy)
        group = ProcessGroup(tuple(range(p)))
        buffers = int_buffers(group, (blocks * p, 3), seed)
        flat = reduce_scatter(buffers, group)
        hier = hierarchical_reduce_scatter(buffers, group, placement)
        for r in group:
            np.testing.assert_array_equal(hier[r], flat[r])

    @given(
        gpn=st.sampled_from([2, 4]),
        nodes=st.sampled_from([2, 3]),
        strategy=st.sampled_from(["block", "round_robin"]),
        rows=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_gather_matches_flat_any_payload(
        self, gpn, nodes, strategy, rows, seed
    ):
        """Pure data movement: bitwise for arbitrary floats."""
        p = gpn * nodes
        if strategy == "round_robin" and p % nodes:
            return
        placement = Placement(toy_machine(gpn), p, strategy=strategy)
        group = ProcessGroup(tuple(range(p)))
        rng = np.random.default_rng(seed)
        buffers = {r: rng.standard_normal((rows, 2)) for r in group}
        flat = all_gather(buffers, group)
        hier = hierarchical_all_gather(buffers, group, placement)
        for r in group:
            np.testing.assert_array_equal(hier[r], flat[r])

    @given(
        gpn=st.sampled_from([2, 4]),
        nodes=st.sampled_from([2, 3]),
        root=st.integers(0, 7),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_broadcast_matches_flat_any_payload(self, gpn, nodes, root, seed):
        p = gpn * nodes
        root %= p
        placement = Placement(toy_machine(gpn), p)
        group = ProcessGroup(tuple(range(p)))
        rng = np.random.default_rng(seed)
        buffers = {r: rng.standard_normal((3, 4)) for r in group}
        flat = broadcast(buffers, group, root)
        hier = hierarchical_broadcast(buffers, group, placement, root)
        for r in group:
            np.testing.assert_array_equal(hier[r], flat[r])
            np.testing.assert_array_equal(hier[r], buffers[root])


class TestRoundingTolerance:
    def test_random_fp64_allclose(self):
        placement = Placement(toy_machine(4), 8)
        group = ProcessGroup(tuple(range(8)))
        rng = np.random.default_rng(7)
        buffers = {r: rng.standard_normal((8, 4)) for r in group}
        flat = all_reduce(buffers, group)
        hier = hierarchical_all_reduce(buffers, group, placement)
        for r in group:
            np.testing.assert_allclose(hier[r], flat[r], rtol=1e-12, atol=1e-12)

    def test_bf16_payload_within_tolerance(self):
        """bf16-rounded inputs: both orders agree to bf16 resolution."""
        placement = Placement(toy_machine(2), 8)
        group = ProcessGroup(tuple(range(8)))
        rng = np.random.default_rng(11)
        buffers = {
            r: to_bf16(rng.standard_normal((8, 2))).astype(np.float64)
            for r in group
        }
        flat = all_reduce(buffers, group)
        hier = hierarchical_all_reduce(buffers, group, placement)
        for r in group:
            np.testing.assert_allclose(hier[r], flat[r], rtol=1e-6, atol=1e-6)


class TestPolicyScope:
    def test_ambient_policy_routes_and_traces(self):
        """Inside the scope, a node-straddling all_reduce executes as
        traced |hier.* sub-collectives that pass the SPMD validator."""
        placement = Placement(toy_machine(2), 4)
        group = ProcessGroup((0, 1, 2, 3))
        buffers = int_buffers(group, (4, 2))
        tracer = CommTracer()
        flat = all_reduce(buffers, group)
        with collective_policy_scope(placement):
            assert get_active_policy() is not None
            out = all_reduce(buffers, group, tracer=tracer, tag="t")
        assert get_active_policy() is None
        for r in group:
            np.testing.assert_array_equal(out[r], flat[r])
        tags = [(r.op, r.tag) for r in tracer.records]
        assert ("reduce_scatter", "t|hier.rs") in tags
        assert ("all_reduce", "t|hier.ar") in tags
        assert ("all_gather", "t|hier.ag") in tags
        assert ("all_reduce", "t") not in tags
        assert_valid_schedule(tracer)

    def test_single_node_group_not_routed(self):
        placement = Placement(toy_machine(4), 8)
        group = ProcessGroup((0, 1, 2, 3))  # fits on node 0
        buffers = int_buffers(group, (4, 2))
        tracer = CommTracer()
        with collective_policy_scope(placement):
            all_reduce(buffers, group, tracer=tracer, tag="t")
        assert [(r.op, r.tag) for r in tracer.records] == [("all_reduce", "t")]

    def test_auto_policy_uses_selector(self):
        """auto: small messages go hierarchical (latency win), huge ones
        stay flat (the lone flat ring keeps the full NIC aggregate)."""
        placement = Placement(toy_machine(2), 4)  # 2 nodes x 2 members
        group = ProcessGroup(tuple(range(4)))
        small = int_buffers(group, (8, 2))  # 128 B
        tracer = CommTracer()
        with collective_policy_scope(placement, "auto"):
            all_reduce(small, group, tracer=tracer, tag="s")
        assert any("|hier." in r.tag for r in tracer.records)

        big = {r: np.ones((1 << 22, 1)) for r in group}  # 32 MiB
        tracer2 = CommTracer()
        with collective_policy_scope(placement, "auto"):
            all_reduce(big, group, tracer=tracer2, tag="b")
        assert [(r.op, r.tag) for r in tracer2.records] == [("all_reduce", "b")]

    def test_custom_selector_and_validation(self):
        placement = Placement(toy_machine(2), 4)
        group = ProcessGroup((0, 1, 2, 3))
        buffers = int_buffers(group, (4, 2))
        calls = []

        def always_flat(op, nbytes, ranks, pl):
            calls.append((op, nbytes))
            return "flat"

        tracer = CommTracer()
        with collective_policy_scope(placement, "auto", selector=always_flat):
            all_reduce(buffers, group, tracer=tracer, tag="t")
        assert calls and calls[0][0] == "all_reduce"
        assert [(r.op, r.tag) for r in tracer.records] == [("all_reduce", "t")]
        with pytest.raises(ValueError):
            collective_policy_scope(placement, "fancy").__enter__()


class TestChooseAlgorithm:
    @given(size=st.integers(1, 8), nbytes=st.sampled_from([64, 1 << 16, 1 << 24]))
    @settings(max_examples=30, deadline=None)
    def test_never_hierarchical_within_a_node(self, size, nbytes):
        """A group that fits in one Frontier node has no decomposition."""
        placement = Placement(FRONTIER, 8)
        choice = choose_algorithm(
            "all_reduce", nbytes, list(range(size)), placement
        )
        assert choice.algo == "flat"
        assert choice.hier_time == float("inf") or choice.L == 0

    def test_small_messages_prefer_hierarchical_at_scale(self):
        placement = Placement(FRONTIER, 64)  # 8 nodes x 8 GCDs
        ranks = list(range(64))
        small = choose_algorithm("all_reduce", 4096, ranks, placement)
        assert small.algo == "hierarchical"
        assert (small.L, small.Q) == (8, 8)
        huge = choose_algorithm("all_reduce", 1 << 30, ranks, placement)
        assert huge.algo == "flat"
        assert huge.speedup >= 1.0

    def test_crossover_monotone(self):
        """Sweeping message size crosses from hierarchical to flat at
        most once (both costs are affine in nbytes)."""
        placement = Placement(PERLMUTTER, 32)
        ranks = list(range(32))
        algos = [
            choose_algorithm("all_reduce", float(1 << e), ranks, placement).algo
            for e in range(8, 31)
        ]
        flips = sum(1 for a, b in zip(algos, algos[1:]) if a != b)
        assert flips <= 1
        assert algos[0] == "hierarchical" and algos[-1] == "flat"


class TestGridIntegration:
    def _loss(self, algo: str):
        machine = toy_machine(2)
        placement = Placement(machine, 8)
        tracer = CommTracer()
        grid = Grid4D(
            GridConfig(4, 1, 2, 1, collective_algo=algo),
            placement=placement,
            tracer=tracer,
        )
        cfg = GPTConfig(
            name="t", num_layers=1, hidden_size=24, num_heads=4,
            seq_len=10, vocab_size=32,
        )
        model = ParallelGPT(grid, cfg, seed=0)
        ids = np.random.default_rng(0).integers(0, cfg.vocab_size, (4, 6))
        with grid.collective_scope():
            loss = model.loss(ids)
            loss.backward()
        return float(loss.data), tracer

    def test_training_step_matches_flat(self):
        flat_loss, flat_tracer = self._loss("flat")
        hier_loss, hier_tracer = self._loss("hierarchical")
        assert hier_loss == pytest.approx(flat_loss, rel=1e-10)
        assert_valid_schedule(hier_tracer)
        hier_tags = {r.tag for r in hier_tracer.records if "|hier." in r.tag}
        assert hier_tags  # the X groups straddle nodes and decomposed
        assert not any("|hier." in r.tag for r in flat_tracer.records)

    def test_non_flat_config_requires_placement(self):
        with pytest.raises(ValueError):
            Grid4D(GridConfig(4, 1, 2, 1, collective_algo="hierarchical"))
        with pytest.raises(ValueError):
            GridConfig(2, 2, 1, 1, collective_algo="bogus")

    def test_collective_algo_excluded_from_equality(self):
        a = GridConfig(2, 2, 2, 1)
        b = GridConfig(2, 2, 2, 1, collective_algo="hierarchical")
        assert a == b and hash(a) == hash(b)
        assert b.swapped_xy().collective_algo == "hierarchical"


class TestModelVsSimulatorRanking:
    """Fig. 2-style: the analytic selector and the discrete-event
    simulator's measured timings must rank flat vs. hierarchical the
    same way (ties within 10% are skipped — both layers model the same
    physics with different contention detail)."""

    @pytest.mark.parametrize("machine", [PERLMUTTER, FRONTIER], ids=lambda m: m.name)
    @pytest.mark.parametrize("op", ["all_reduce", "all_gather", "reduce_scatter"])
    def test_ranking_agreement(self, machine, op):
        from repro.simulate.network_sim import (
            hierarchical_group_timing,
            measured_group_bandwidth,
        )

        p = 2 * machine.gpus_per_node  # the full groups of two nodes
        placement = Placement(machine, p)
        grid = Grid4D(GridConfig(p, 1, 1, 1), placement=placement)
        lt = measured_group_bandwidth(grid, placement, "x")
        ht = hierarchical_group_timing(grid, placement, "x")
        assert ht is not None

        checked = 0
        for e in range(8, 31, 2):
            nbytes = float(1 << e)
            choice = choose_algorithm(op, nbytes, list(range(p)), placement)
            sim_flat = flat_time(op, nbytes, p, lt.bandwidth, lt.latency)
            sim_hier = hierarchical_time(
                op, nbytes, ht.L, ht.Q,
                ht.intra.bandwidth, ht.leaders.bandwidth,
                ht.intra.latency, ht.leaders.latency,
            )
            if abs(sim_flat - sim_hier) < 0.1 * max(sim_flat, sim_hier):
                continue  # too close to a tie to demand agreement
            if abs(choice.flat_time - choice.hier_time) < 0.1 * max(
                choice.flat_time, choice.hier_time
            ):
                continue
            sim_algo = "hierarchical" if sim_hier < sim_flat else "flat"
            assert choice.algo == sim_algo, (
                f"{machine.name} {op} {nbytes:.0f}B: model={choice.algo} "
                f"sim={sim_algo}"
            )
            checked += 1
        assert checked >= 5  # the sweep must actually exercise both sides
