"""Property tests for scaling curves and sibling-contention bounds.

Two previously untested edge surfaces of the simulator:

* ``simulate/scaling.py`` — weak scaling must be *monotone*: growing the
  rank count at fixed per-GPU work (batch proportional to devices) can
  only add communication, so noise-free batch time never decreases;
* ``network_sim.hierarchical_group_timing`` / ``measured_group_bandwidth``
  — contention can only *cost*: a group's measured bandwidth under
  sibling contention (and job-scale congestion) must never beat the
  uncontended bottleneck of its lone ring, for the flat ring and for
  both levels of the two-level decomposition.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ALPS,
    FRONTIER,
    PERLMUTTER,
    Placement,
    build_ring,
    ring_bottleneck_bandwidth,
)
from repro.config import GPTConfig
from repro.core import Grid4D, GridConfig
from repro.runtime.hierarchical import decompose_by_node
from repro.simulate import OverlapFlags, simulate_iteration
from repro.simulate.network_sim import (
    hierarchical_group_timing,
    measured_group_bandwidth,
)

TINY = GPTConfig("prop-tiny", num_layers=2, hidden_size=64, num_heads=4,
                 seq_len=32, vocab_size=64)

MACHINES = [PERLMUTTER, FRONTIER, ALPS]


@st.composite
def grid_points(draw):
    """(machine, GridConfig) with total devices in {8..128}."""
    machine = draw(st.sampled_from(MACHINES))
    total = draw(st.sampled_from([8, 16, 32, 64, 128]))
    dims = [1, 1, 1, 1]
    remaining = total
    for i in range(3):
        divisors = [d for d in range(1, remaining + 1) if remaining % d == 0]
        dims[i] = draw(st.sampled_from(divisors))
        remaining //= dims[i]
    dims[3] = remaining
    return machine, GridConfig(*dims)


class TestWeakScalingMonotone:
    """Noise-free batch time is non-decreasing in rank count when the
    per-GPU work is held fixed (two sequences per device)."""

    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_data_axis_growth(self, machine):
        times = []
        for gdata in (1, 2, 4, 8, 16, 32):
            config = GridConfig(2, 2, 2, gdata)
            res = simulate_iteration(
                TINY, 2 * config.total, config, machine,
                overlap=OverlapFlags.all(), noise=0.0,
            )
            times.append(res.total_time)
        assert times == sorted(times), (
            f"weak-scaling curve not monotone on {machine.name}: {times}"
        )

    @settings(max_examples=25, deadline=None)
    @given(point=grid_points(), factor=st.sampled_from([2, 4]))
    def test_doubling_ranks_never_speeds_up(self, point, factor):
        machine, config = point
        grown = GridConfig(
            config.gx, config.gy, config.gz, config.gdata * factor
        )
        if grown.total > machine.total_gpus:
            return
        base = simulate_iteration(
            TINY, 2 * config.total, config, machine,
            overlap=OverlapFlags.all(), noise=0.0,
        )
        scaled = simulate_iteration(
            TINY, 2 * grown.total, grown, machine,
            overlap=OverlapFlags.all(), noise=0.0,
        )
        assert scaled.total_time >= base.total_time


class TestContentionBounds:
    """Shared/congested bandwidths never beat the uncontended ring."""

    @settings(max_examples=40, deadline=None)
    @given(point=grid_points(), axis=st.sampled_from(["x", "y", "z", "data"]))
    def test_flat_never_beats_lone_ring(self, point, axis):
        machine, config = point
        placement = Placement(machine, config.total)
        grid = Grid4D(config, placement=placement)
        timing = measured_group_bandwidth(grid, placement, axis)
        rep = grid.group_along(axis, 0)
        if rep.size == 1:
            assert timing.bandwidth == float("inf")
            return
        lone = ring_bottleneck_bandwidth(
            build_ring(list(rep.ranks), placement), placement
        )
        assert timing.bandwidth <= lone

    @settings(max_examples=40, deadline=None)
    @given(point=grid_points(), axis=st.sampled_from(["x", "y", "z", "data"]))
    def test_hierarchical_never_beats_uncontended(self, point, axis):
        machine, config = point
        placement = Placement(machine, config.total)
        grid = Grid4D(config, placement=placement)
        hier = hierarchical_group_timing(grid, placement, axis)
        if hier is None:
            return
        rep = grid.group_along(axis, 0)
        dec = decompose_by_node(rep.ranks, placement)
        assert dec is not None
        intra_bound = min(
            ring_bottleneck_bandwidth(build_ring(list(g.ranks), placement), placement)
            for g in dec.node_groups
        )
        cross_bound = min(
            ring_bottleneck_bandwidth(build_ring(list(g.ranks), placement), placement)
            for g in dec.cross_groups
        )
        assert hier.intra.bandwidth <= intra_bound
        assert hier.leaders.bandwidth <= cross_bound
        # And the decomposition's shape is the one the runtime executes.
        assert hier.L == dec.L and hier.Q == dec.Q

    def test_congestion_charged_at_scale(self):
        """Leaders bandwidth of a node-straddling group includes the
        job-scale congestion division (strictly below the NIC share)."""
        config = GridConfig(16, 1, 1, 8)
        placement = Placement(FRONTIER, config.total)
        grid = Grid4D(config, placement=placement)
        hier = hierarchical_group_timing(grid, placement, "x")
        assert hier is not None
        assert hier.leaders.bandwidth < FRONTIER.inter_node_bw
