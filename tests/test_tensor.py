"""Tests for the autograd engine: every op's gradient is checked against
central finite differences, plus graph-mechanics and bf16 tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import (
    Tensor,
    as_tensor,
    bf16_eps,
    checkpoint,
    cross_entropy,
    dropout,
    embedding,
    gelu,
    is_bf16_exact,
    is_grad_enabled,
    layer_norm,
    log_softmax,
    no_grad,
    relu,
    softmax,
    to_bf16,
    where_mask,
)


def numeric_grad(f, x, eps=1e-6):
    """Central finite-difference gradient of scalar f at array x."""
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f(x)
        flat[i] = orig - eps
        lo = f(x)
        flat[i] = orig
        gf[i] = (hi - lo) / (2 * eps)
    return g


def check_grad(op, shapes, seed=0, tol=1e-6):
    """Verify autograd of `op(*(tensors))` (scalarized by sum) against
    finite differences for each input."""
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(s) for s in shapes]
    for wrt in range(len(arrays)):
        tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        out = op(*tensors)
        loss = out.sum() if out.size > 1 else out
        loss.backward()
        analytic = tensors[wrt].grad

        def scalar_f(x, wrt=wrt):
            args = [a.copy() for a in arrays]
            args[wrt] = x
            ts = [Tensor(a) for a in args]
            return float(op(*ts).sum().data)

        numeric = numeric_grad(scalar_f, arrays[wrt].copy())
        np.testing.assert_allclose(analytic, numeric, rtol=tol, atol=tol)


class TestArithmeticGrads:
    def test_add(self):
        check_grad(lambda a, b: a + b, [(3, 4), (3, 4)])

    def test_add_broadcast(self):
        check_grad(lambda a, b: a + b, [(3, 4), (4,)])

    def test_sub(self):
        check_grad(lambda a, b: a - b, [(2, 3), (2, 3)])

    def test_mul(self):
        check_grad(lambda a, b: a * b, [(3, 3), (3, 3)])

    def test_mul_broadcast(self):
        check_grad(lambda a, b: a * b, [(2, 3, 4), (1, 3, 1)])

    def test_div(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3)) + 3.0  # away from zero
        ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
        (ta / tb).sum().backward()
        np.testing.assert_allclose(ta.grad, 1.0 / b, rtol=1e-10)
        np.testing.assert_allclose(tb.grad, -a / b**2, rtol=1e-10)

    def test_neg_pow(self):
        check_grad(lambda a: (-a) ** 2, [(4,)])

    def test_scalar_ops(self):
        t = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        (2.0 * t + 1.0 - t / 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [1.5, 1.5])

    def test_rsub_rdiv(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = 1.0 - t
        out.backward()
        np.testing.assert_allclose(t.grad, [-1.0])
        t2 = Tensor(np.array([2.0]), requires_grad=True)
        (1.0 / t2).backward()
        np.testing.assert_allclose(t2.grad, [-0.25])


class TestMatmulGrads:
    def test_2d(self):
        check_grad(lambda a, b: a @ b, [(3, 4), (4, 5)])

    def test_batched(self):
        check_grad(lambda a, b: a @ b, [(2, 3, 4), (2, 4, 5)])

    def test_broadcast_batch(self):
        check_grad(lambda a, b: a @ b, [(2, 3, 4), (4, 5)])

    def test_transpose_chain(self):
        check_grad(lambda a, b: a.t() @ b, [(4, 3), (4, 5)])


class TestShapeGrads:
    def test_reshape(self):
        check_grad(lambda a: a.reshape(6, 2), [(3, 4)])

    def test_transpose_axes(self):
        check_grad(lambda a: a.transpose((2, 0, 1)), [(2, 3, 4)])

    def test_getitem(self):
        check_grad(lambda a: a[1:3], [(5, 2)])

    def test_concatenate(self):
        check_grad(
            lambda a, b: Tensor.concatenate([a, b], axis=1), [(2, 3), (2, 2)]
        )

    def test_sum_axis(self):
        check_grad(lambda a: a.sum(axis=1), [(3, 4)])

    def test_mean(self):
        check_grad(lambda a: a.mean(), [(3, 4)])

    def test_sum_keepdims(self):
        check_grad(lambda a: a.sum(axis=0, keepdims=True), [(3, 4)])


class TestElementwiseGrads:
    def test_exp_log(self):
        rng = np.random.default_rng(0)
        a = np.abs(rng.standard_normal((3, 3))) + 0.5
        t = Tensor(a, requires_grad=True)
        t.log().sum().backward()
        np.testing.assert_allclose(t.grad, 1.0 / a, rtol=1e-10)
        t2 = Tensor(a, requires_grad=True)
        t2.exp().sum().backward()
        np.testing.assert_allclose(t2.grad, np.exp(a), rtol=1e-10)

    def test_tanh_sqrt(self):
        check_grad(lambda a: a.tanh(), [(4,)])
        rng = np.random.default_rng(0)
        a = np.abs(rng.standard_normal(5)) + 1.0
        t = Tensor(a, requires_grad=True)
        t.sqrt().sum().backward()
        np.testing.assert_allclose(t.grad, 0.5 / np.sqrt(a), rtol=1e-10)

    def test_maximum(self):
        check_grad(lambda a, b: a.maximum(b), [(6,), (6,)], seed=3)

    def test_gelu(self):
        check_grad(gelu, [(5, 3)])

    def test_relu(self):
        t = Tensor(np.array([-1.0, 2.0, -3.0]), requires_grad=True)
        relu(t).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 0.0])


class TestFusedOps:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 7)))
        s = softmax(x)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4), rtol=1e-12)

    def test_softmax_grad(self):
        check_grad(lambda a: softmax(a), [(3, 5)])

    def test_log_softmax_grad(self):
        check_grad(lambda a: log_softmax(a), [(3, 5)])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(0).standard_normal((2, 9)))
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), rtol=1e-10
        )

    def test_layer_norm_grad(self):
        check_grad(
            lambda x, w, b: layer_norm(x, w, b), [(4, 6), (6,), (6,)], tol=1e-5
        )

    def test_layer_norm_normalizes(self):
        x = Tensor(np.random.default_rng(0).standard_normal((3, 8)) * 5 + 2)
        w = Tensor(np.ones(8))
        b = Tensor(np.zeros(8))
        y = layer_norm(x, w, b).data
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(y.std(axis=-1), 1.0, atol=1e-3)

    def test_embedding_forward_and_grad(self):
        w = Tensor(np.random.default_rng(0).standard_normal((10, 4)), requires_grad=True)
        ids = np.array([[1, 1, 3]])
        out = embedding(w, ids)
        assert out.shape == (1, 3, 4)
        out.sum().backward()
        assert w.grad[1].sum() == pytest.approx(8.0)  # row 1 used twice
        assert w.grad[3].sum() == pytest.approx(4.0)
        assert w.grad[0].sum() == 0.0

    def test_embedding_rejects_float_ids(self):
        w = Tensor(np.zeros((4, 2)))
        with pytest.raises(TypeError):
            embedding(w, np.array([0.5]))

    def test_cross_entropy_matches_manual(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((5, 7))
        targets = rng.integers(0, 7, size=5)
        t = Tensor(logits, requires_grad=True)
        loss = cross_entropy(t, targets)
        # manual
        ls = logits - logits.max(axis=1, keepdims=True)
        logp = ls - np.log(np.exp(ls).sum(axis=1, keepdims=True))
        expect = -logp[np.arange(5), targets].mean()
        assert loss.item() == pytest.approx(expect, rel=1e-12)

    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(1)
        targets = rng.integers(0, 6, size=4)

        def op(a):
            return cross_entropy(a, targets)

        check_grad(op, [(4, 6)])

    def test_cross_entropy_mask_drops_tokens(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((4, 5))
        targets = rng.integers(0, 5, size=4)
        mask = np.array([1, 0, 1, 0])
        t = Tensor(logits, requires_grad=True)
        loss = cross_entropy(t, targets, loss_mask=mask)
        loss.backward()
        # Masked rows get zero gradient.
        np.testing.assert_array_equal(t.grad[1], 0.0)
        np.testing.assert_array_equal(t.grad[3], 0.0)
        assert np.abs(t.grad[0]).sum() > 0

    def test_cross_entropy_all_masked_rejected(self):
        t = Tensor(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            cross_entropy(t, np.array([0, 1]), loss_mask=np.zeros(2))

    def test_dropout_zero_p_identity(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        assert dropout(x, 0.0) is x

    def test_dropout_scales_kept(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(10000))
        y = dropout(x, 0.5, rng=rng)
        kept = y.data[y.data > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (y.data > 0).mean() < 0.6

    def test_dropout_bad_p(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(2)), 1.0)

    def test_where_mask(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        mask = np.array([True, False, True, False])
        y = where_mask(x, mask, -np.inf)
        assert y.data[1] == -np.inf
        y2 = where_mask(x, mask, 0.0)
        y2.sum().backward()
        np.testing.assert_array_equal(x.grad, [1.0, 0.0, 1.0, 0.0])


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        (t * t).backward()  # d/dt t^2 = 2t
        np.testing.assert_allclose(t.grad, [6.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3.0
        b = t * 4.0
        (a + b).backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_multiple_backward_accumulates(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 2.0).backward()
        (t * 2.0).backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 2.0).backward()
        t.zero_grad()
        assert t.grad is None

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2.0
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_backward_on_constant_rejected(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_detach_cuts_graph(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_int_input_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float64

    def test_zeros_ones_helpers(self):
        assert Tensor.zeros((2, 3)).shape == (2, 3)
        assert Tensor.ones((2,)).data.sum() == 2.0

    def test_repr(self):
        assert "requires_grad" in repr(Tensor(np.ones(1), requires_grad=True))


class TestCheckpoint:
    def test_same_value_and_grads_as_direct(self):
        rng = np.random.default_rng(0)
        w = Tensor(rng.standard_normal((4, 4)), requires_grad=True)

        def segment(x):
            return gelu(x @ w)

        x1 = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        direct = segment(x1)
        direct.sum().backward()

        w2 = Tensor(w.data.copy(), requires_grad=True)

        def segment2(x):
            return gelu(x @ w2)

        x2 = Tensor(x1.data.copy(), requires_grad=True)
        ck = checkpoint(segment2, x2)
        np.testing.assert_allclose(ck.data, direct.data, rtol=1e-12)
        ck.sum().backward()
        np.testing.assert_allclose(x2.grad, x1.grad, rtol=1e-12)
        np.testing.assert_allclose(w2.grad, w.grad, rtol=1e-12)

    def test_nested_checkpoint(self):
        w = Tensor(np.eye(3), requires_grad=True)

        def inner(x):
            return x @ w

        def outer(x):
            return checkpoint(inner, x) * 2.0

        x = Tensor(np.ones((2, 3)), requires_grad=True)
        checkpoint(outer, x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * np.ones((2, 3)))


class TestBF16:
    def test_roundtrip_is_idempotent(self):
        x = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        once = to_bf16(x)
        twice = to_bf16(once)
        np.testing.assert_array_equal(once, twice)
        assert is_bf16_exact(once)

    def test_relative_error_bounded(self):
        x = np.random.default_rng(1).standard_normal(1000) * 100
        y = to_bf16(x)
        rel = np.abs(y - x.astype(np.float32)) / np.abs(x)
        assert rel.max() <= bf16_eps() / 2 + 1e-7

    def test_preserves_special_values(self):
        x = np.array([0.0, -0.0, np.inf, -np.inf, np.nan], dtype=np.float32)
        y = to_bf16(x)
        assert y[0] == 0 and y[1] == 0
        assert np.isinf(y[2]) and y[2] > 0
        assert np.isinf(y[3]) and y[3] < 0
        assert np.isnan(y[4])

    def test_exact_for_representable(self):
        # Powers of two and small integers are exactly representable.
        x = np.array([1.0, 2.0, 0.5, 0.25, 3.0, 100.0], dtype=np.float32)
        np.testing.assert_array_equal(to_bf16(x), x)

    @given(st.floats(-1e30, 1e30, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_rounding_never_increases_error_beyond_half_ulp(self, v):
        y = float(to_bf16(np.array([v], dtype=np.float32))[0])
        if v != 0:
            assert abs(y - v) <= abs(v) * (bf16_eps() / 2) + 1e-38


class TestAsTensor:
    def test_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t

    def test_scalar(self):
        t = as_tensor(3.0)
        assert t.data == 3.0 and not t.requires_grad
