"""Fault injection: deterministic plans, runtime hooks, retry budgets,
and — critically — proof that every injected fault class leaves a
schedule defect the static validator detects *and attributes to the
right rank and op*.  An injector whose faults the validator cannot see
is testing nothing.
"""

import numpy as np
import pytest

from repro.runtime import (
    CommTracer,
    CommTimeoutError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ProcessGroup,
    RankFailure,
    RetryPolicy,
    all_reduce,
    all_to_all,
    broadcast,
    corrupt_schedule,
    fault_scope,
    gather,
    get_active_injector,
    iall_reduce,
    reduce_scatter,
    scatter,
    send_recv,
    validate_schedule,
)


GROUP = ProcessGroup((0, 1, 2, 3))


def bufs(n=8, group=GROUP):
    return {r: np.full(n, float(r)) for r in group}


# -- specs and plans -----------------------------------------------------------


class TestFaultSpec:
    def test_kill_requires_rank(self):
        with pytest.raises(ValueError):
            FaultSpec("kill")

    def test_p2p_faults_require_endpoints(self):
        with pytest.raises(ValueError):
            FaultSpec("drop_p2p", src=0)
        with pytest.raises(ValueError):
            FaultSpec("delay_p2p", src=1, dst=1, delay=1.0)

    def test_delay_needs_positive_delay(self):
        with pytest.raises(ValueError):
            FaultSpec("delay_wait", delay=0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor_strike", rank=0)

    def test_random_plans_are_seed_deterministic(self):
        a = FaultPlan.random(seed=7, ranks=16, max_step=5)
        b = FaultPlan.random(seed=7, ranks=16, max_step=5)
        c = FaultPlan.random(seed=8, ranks=16, max_step=5)
        assert a.faults == b.faults
        assert a.faults != c.faults

    def test_random_plan_faults_are_valid(self):
        for seed in range(20):
            plan = FaultPlan.random(seed=seed, ranks=8, max_step=10, n_faults=5)
            assert len(plan.faults) == 5


class TestRetryPolicy:
    def test_budget_is_geometric_sum(self):
        rp = RetryPolicy(timeout=1.0, max_retries=3, backoff=2.0)
        assert rp.budget == pytest.approx(1 + 2 + 4 + 8)

    def test_attempts_to_cover(self):
        rp = RetryPolicy(timeout=1.0, max_retries=3, backoff=2.0)
        assert rp.attempts_to_cover(0.5) == 1
        assert rp.attempts_to_cover(2.5) == 2
        assert rp.attempts_to_cover(15.0) == 4
        assert rp.attempts_to_cover(15.1) is None
        assert rp.attempts_to_cover(float("inf")) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)


# -- runtime hooks -------------------------------------------------------------


class TestKillInjection:
    def test_kill_raises_on_next_collective(self):
        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=2, step=0),)))
        with fault_scope(inj):
            with pytest.raises(RankFailure) as e:
                all_reduce(bufs(), GROUP)
        assert e.value.rank == 2
        assert "all_reduce" in str(e.value)

    def test_kill_waits_for_its_step(self):
        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=1, step=3),)))
        with fault_scope(inj):
            inj.start_step(2)
            all_reduce(bufs(), GROUP)  # must not raise
            inj.start_step(3)
            with pytest.raises(RankFailure):
                all_reduce(bufs(), GROUP)

    def test_dead_rank_stops_recording(self):
        tracer = CommTracer()
        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=1, step=0),)))
        with fault_scope(inj):
            with pytest.raises(RankFailure):
                all_reduce(bufs(), GROUP, tracer=tracer)
        assert 1 in tracer.dead_ranks
        # Fail-stop: the victim records nothing from the failed call on.
        assert not [e for e in tracer.events if e.rank == 1]

    def test_kill_fires_once_but_dead_stays_dead_until_restart(self):
        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=0, step=0),)))
        with fault_scope(inj):
            with pytest.raises(RankFailure):
                all_reduce(bufs(), GROUP)
            # Still dead: later ops with the corpse keep failing.
            with pytest.raises(RankFailure):
                broadcast(bufs(), GROUP, root=1)
            inj.restart()
            out = all_reduce(bufs(), GROUP)  # replacement node: works
        assert np.allclose(out[0], 6.0)
        assert inj.stats["kills"] == 1

    def test_kill_hits_p2p_and_rooted_collectives(self):
        for call in (
            lambda: send_recv(np.ones(4), 0, 1),
            lambda: scatter([np.ones(2)] * 4, GROUP, root=0),
            lambda: gather(bufs(), GROUP, root=0),
            lambda: all_to_all(
                {r: [np.ones(2)] * 4 for r in GROUP}, GROUP
            ),
        ):
            inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=0, step=0),)))
            with fault_scope(inj):
                with pytest.raises(RankFailure):
                    call()

    def test_kill_hits_nonblocking_wait(self):
        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=3, step=1),)))
        with fault_scope(inj):
            h = iall_reduce(bufs(), GROUP)
            inj.start_step(1)
            with pytest.raises(RankFailure):
                h.wait()


class TestBitflipInjection:
    def test_bitflip_corrupts_exactly_one_rank_silently(self):
        clean = all_reduce(bufs(), GROUP)
        inj = FaultInjector(
            FaultPlan((FaultSpec("bitflip", rank=2, op="all_reduce"),), seed=5)
        )
        with fault_scope(inj):
            dirty = all_reduce(bufs(), GROUP)
        assert inj.stats["bitflips"] == 1
        # Corruption propagated through the sum without any exception —
        # the silent-data-corruption scenario.
        assert not np.array_equal(dirty[0], clean[0])
        # NCCL invariant still holds: all ranks agree (on the wrong sum).
        for r in GROUP:
            assert np.array_equal(dirty[r], dirty[0])

    def test_bitflip_is_seed_deterministic(self):
        def run(seed):
            inj = FaultInjector(
                FaultPlan((FaultSpec("bitflip", rank=1, op="all_reduce"),), seed=seed)
            )
            with fault_scope(inj):
                return all_reduce(bufs(), GROUP)[0]

        assert np.array_equal(run(3), run(3))

    def test_bitflip_match_selects_nth_call(self):
        # Assert on the fired counter, not the sum: a flip in a low
        # mantissa byte can be numerically invisible after reduction.
        inj = FaultInjector(
            FaultPlan((FaultSpec("bitflip", rank=0, op="all_reduce", match=1),))
        )
        with fault_scope(inj):
            all_reduce(bufs(), GROUP)
            assert inj.stats["bitflips"] == 0
            all_reduce(bufs(), GROUP)
            assert inj.stats["bitflips"] == 1
            all_reduce(bufs(), GROUP)
            assert inj.stats["bitflips"] == 1  # fires once

    def test_bitflip_respects_op_filter(self):
        inj = FaultInjector(
            FaultPlan((FaultSpec("bitflip", rank=0, op="reduce_scatter"),))
        )
        clean = all_reduce(bufs(), GROUP)
        with fault_scope(inj):
            # all_reduce's *internal* reduce-scatter must not be a fault
            # site (the composite op is the user-visible call).
            out = all_reduce(bufs(), GROUP)
        assert np.array_equal(out[0], clean[0])
        with fault_scope(inj):
            rs = reduce_scatter(bufs(8), GROUP)
        assert inj.stats["bitflips"] == 1


class TestP2PInjection:
    def test_drop_exhausts_retry_budget(self):
        inj = FaultInjector(
            FaultPlan((FaultSpec("drop_p2p", src=0, dst=1),)),
            retry=RetryPolicy(timeout=1.0, max_retries=2, backoff=2.0),
        )
        with fault_scope(inj):
            with pytest.raises(CommTimeoutError) as e:
                send_recv(np.ones(4), 0, 1)
        assert e.value.attempts == 3
        assert inj.waited == pytest.approx(7.0)  # 1 + 2 + 4
        assert inj.stats["timeouts"] == 1

    def test_dropped_send_recorded_without_recv(self):
        tracer = CommTracer()
        inj = FaultInjector(FaultPlan((FaultSpec("drop_p2p", src=0, dst=1),)))
        with fault_scope(inj):
            with pytest.raises(CommTimeoutError):
                send_recv(np.ones(4), 0, 1, tracer=tracer)
        ops = [(e.rank, e.op) for e in tracer.events]
        assert (0, "send") in ops
        assert (1, "recv") not in ops

    def test_delay_within_budget_retries_then_succeeds(self):
        inj = FaultInjector(
            FaultPlan((FaultSpec("delay_p2p", src=0, dst=1, delay=2.5),)),
            retry=RetryPolicy(timeout=1.0, max_retries=3, backoff=2.0),
        )
        with fault_scope(inj):
            out = send_recv(np.arange(4.0), 0, 1)
        assert np.array_equal(out, np.arange(4.0))
        assert inj.stats["retries"] == 1  # attempts 1 (1s) + 2 (2s) cover 2.5s
        assert inj.waited == pytest.approx(3.0)

    def test_delay_beyond_budget_times_out(self):
        inj = FaultInjector(
            FaultPlan((FaultSpec("delay_p2p", src=0, dst=1, delay=100.0),)),
            retry=RetryPolicy(timeout=1.0, max_retries=1, backoff=2.0),
        )
        with fault_scope(inj):
            with pytest.raises(CommTimeoutError):
                send_recv(np.ones(4), 0, 1)

    def test_match_counts_per_channel(self):
        inj = FaultInjector(
            FaultPlan((FaultSpec("drop_p2p", src=0, dst=1, match=1),))
        )
        with fault_scope(inj):
            send_recv(np.ones(4), 0, 1)  # message 0: delivered
            send_recv(np.ones(4), 1, 0)  # other channel: not counted
            with pytest.raises(CommTimeoutError):
                send_recv(np.ones(4), 0, 1)  # message 1: dropped

    def test_delay_wait_on_nonblocking_handle(self):
        inj = FaultInjector(
            FaultPlan((FaultSpec("delay_wait", op="all_reduce", delay=50.0),)),
            retry=RetryPolicy(timeout=1.0, max_retries=0),
        )
        with fault_scope(inj):
            h = iall_reduce(bufs(), GROUP)
            with pytest.raises(CommTimeoutError):
                h.wait()


class TestFaultScope:
    def test_scope_installs_and_removes(self):
        inj = FaultInjector(FaultPlan())
        assert get_active_injector() is None
        with fault_scope(inj):
            assert get_active_injector() is inj
        assert get_active_injector() is None

    def test_none_scope_is_noop(self):
        with fault_scope(None) as got:
            assert got is None
            assert get_active_injector() is None

    def test_no_injector_means_no_interference(self):
        clean = all_reduce(bufs(), GROUP)
        assert np.allclose(clean[0], 6.0)


# -- validator failure paths (the injector/validator contract) -----------------


class TestValidatorDetectsInjectedFaults:
    """Satellite: each fault class's schedule footprint must be detected
    and attributed to the right rank/op by the static validator."""

    def record_clean(self):
        tracer = CommTracer()
        all_reduce(bufs(), GROUP, tracer=tracer, tag="grads")
        all_reduce(bufs(), GROUP, tracer=tracer, tag="grads2")
        send_recv(np.ones(4), 2, 3, tracer=tracer, tag="act")
        return list(tracer.events)

    def test_clean_schedule_validates(self):
        assert validate_schedule(self.record_clean()) == []

    def test_killed_rank_attributed(self):
        events = corrupt_schedule(
            self.record_clean(),
            FaultPlan((FaultSpec("kill", rank=2, step=0, match=1),)),
        )
        violations = validate_schedule(events)
        assert violations, "validator missed a killed rank"
        v = violations[0]
        assert v.rank == 2
        assert v.op == "all_reduce"
        assert "missing" in v.message

    def test_dropped_message_attributed(self):
        events = corrupt_schedule(
            self.record_clean(),
            FaultPlan((FaultSpec("drop_p2p", src=2, dst=3),)),
        )
        violations = validate_schedule(events)
        assert violations, "validator missed a dropped message"
        v = violations[0]
        assert v.check == "p2p"
        assert v.rank == 2  # the sender left hanging
        assert "no matching recv" in v.message

    def test_corrupted_payload_attributed(self):
        events = corrupt_schedule(
            self.record_clean(),
            FaultPlan((FaultSpec("bitflip", rank=1, op="all_reduce"),)),
        )
        violations = validate_schedule(events)
        assert violations, "validator missed a corrupted collective"
        v = violations[0]
        assert v.rank == 1
        assert v.op == "all_reduce"

    def test_corrupt_schedule_leaves_clean_plan_untouched(self):
        events = self.record_clean()
        assert corrupt_schedule(events, FaultPlan()) == events


class TestServingFaultTaxonomy:
    """The serving-side fault classes added for the chaos-hardened
    engines slot into the same ``fault_cause`` accounting buckets the
    training recovery loop uses."""

    def test_fault_cause_buckets(self):
        from repro.runtime import (
            DeadlineExceededError,
            DecodeRankFailure,
            PreemptedError,
            RequestRejectedError,
            RequestShedError,
            fault_cause,
        )

        assert fault_cause(RequestRejectedError(1, "too big")) == "rejected"
        assert fault_cause(RequestShedError(2, 5)) == "shed"
        assert fault_cause(DeadlineExceededError(3, 1.0, 2.0)) == "deadline"
        assert fault_cause(PreemptedError(4, 7)) == "preempted"
        # A decode-time kill is its own bucket, checked before the
        # training-time RankFailure it subclasses.
        assert fault_cause(DecodeRankFailure(0, 3, "decode")) == "decode_kill"
        assert fault_cause(RankFailure(0, 3, "all_reduce")) == "kill"

    def test_decode_failure_is_a_rank_failure(self):
        from repro.runtime import DecodeRankFailure

        exc = DecodeRankFailure(1, 9, "decode")
        assert isinstance(exc, RankFailure)
        assert exc.rank == 1 and exc.step == 9

    def test_messages_identify_the_request(self):
        from repro.runtime import (
            DeadlineExceededError,
            RequestRejectedError,
            RequestShedError,
        )

        assert "request 7" in str(RequestRejectedError(7, "x"))
        assert "queue full" in str(RequestShedError(1, 4))
        assert "deadline" in str(DeadlineExceededError(2, 1.0, 3.0))
