"""Serving simulator tests: analytic costs, the virtual-time loop, the
offered-load frontier, and the serve-report CLI."""

import json

import numpy as np
import pytest

from repro.cluster import FRONTIER, PERLMUTTER
from repro.config import get_model
from repro.serving import BatchingConfig, Request, poisson_trace
from repro.simulate.serving import (
    ServingModel,
    simulate_serving,
    sweep_offered_load,
)


def small_model(tp=4, algo="flat"):
    return ServingModel(get_model("GPT-5B"), FRONTIER, tp=tp,
                        collective_algo=algo)


class TestServingModelCosts:
    def test_costs_are_positive_and_scale(self):
        m = small_model()
        assert m.prefill_time(64) > 0
        assert m.prefill_time(128) > m.prefill_time(64)
        assert m.decode_step_time(1, 100) > 0
        # Longer context reads more KV.
        assert m.decode_step_time(1, 4000) > m.decode_step_time(1, 100)

    def test_decode_batching_amortizes_the_weight_stream(self):
        """8 sequences in one step must be far cheaper than 8 steps of
        1 — the roofline argument for continuous batching."""
        m = small_model()
        together = m.decode_step_time(8, 800)
        alone = 8 * m.decode_step_time(1, 100)
        assert together < alone / 2

    def test_tp_divides_memory_time(self):
        t1 = ServingModel(get_model("GPT-5B"), FRONTIER, tp=1)
        t8 = ServingModel(get_model("GPT-5B"), FRONTIER, tp=8)
        # More devices stream the weights faster, even after paying
        # the all-reduce the tp=1 instance avoids entirely.
        assert t8.decode_step_time(1, 100) < t1.decode_step_time(1, 100)

    def test_collective_algo_never_slows_the_step(self):
        """"auto" takes min(flat, hierarchical): it can only help."""
        cfg = get_model("GPT-20B")
        flat = ServingModel(cfg, PERLMUTTER, tp=8, collective_algo="flat")
        auto = ServingModel(cfg, PERLMUTTER, tp=8, collective_algo="auto")
        for batch in (1, 16, 64):
            assert auto.decode_step_time(batch, 100) <= (
                flat.decode_step_time(batch, 100)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingModel(get_model("GPT-5B"), FRONTIER, tp=0)
        with pytest.raises(ValueError):
            # GPT-5B has 32 heads; 5 does not divide them.
            ServingModel(get_model("GPT-5B"), FRONTIER, tp=5)


class TestSimulateServing:
    def _trace(self, rate, n=24, seed=0):
        return poisson_trace(rate, n, seed=seed, vocab_size=64,
                             prompt_lens=(16, 64), max_new_tokens=(8, 32))

    def test_deterministic(self):
        m = small_model()
        cfgb = BatchingConfig(max_batch=8, num_blocks=2048)
        a = simulate_serving(self._trace(2.0), m, cfgb)
        b = simulate_serving(self._trace(2.0), m, cfgb)
        assert a == b

    def test_all_requests_finish(self):
        m = small_model()
        res = simulate_serving(self._trace(4.0), m,
                               BatchingConfig(max_batch=8, num_blocks=2048))
        assert res.num_requests == 24
        assert res.generated_tokens == sum(
            r.max_new_tokens for r in self._trace(4.0)
        )
        assert res.makespan > 0
        assert res.p50_e2e <= res.p99_e2e
        assert res.p50_ttft <= res.p99_ttft
        assert 0.0 <= res.slo_attainment <= 1.0

    def test_load_raises_latency_and_throughput(self):
        """The frontier's defining shape: more offered load, more
        tokens/s, worse tail latency."""
        m = small_model()
        cfgb = BatchingConfig(max_batch=8, num_blocks=2048)
        lo, hi = sweep_offered_load(
            [0.2, 50.0], 24, m, cfgb, seed=0,
            prompt_lens=(16, 64), max_new_tokens=(8, 32),
        )
        assert hi.tokens_per_s > lo.tokens_per_s
        assert hi.p99_e2e > lo.p99_e2e
        assert hi.mean_batch > lo.mean_batch

    def test_saturation_breaks_the_slo(self):
        """A single-slot instance under heavy load must queue requests
        past the slowdown SLO."""
        m = small_model()
        res = simulate_serving(
            self._trace(200.0), m,
            BatchingConfig(max_batch=1, num_blocks=2048),
            slo_multiplier=2.0,
        )
        assert res.slo_attainment < 1.0
        assert res.mean_batch <= 1.0

    def test_sweep_holds_request_mix_fixed(self):
        m = small_model()
        cfgb = BatchingConfig(max_batch=8, num_blocks=2048)
        res = sweep_offered_load([0.5, 8.0], 12, m, cfgb, seed=3)
        assert res[0].generated_tokens == res[1].generated_tokens
        assert res[0].offered_load < res[1].offered_load

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate_serving([], small_model())

    def test_head_of_line_semantics_match_engine(self):
        """The sim admits through the same ContinuousBatcher: a huge
        head request blocks later small ones even when they fit."""
        m = small_model()
        big = Request(0, np.ones(400, dtype=np.int64), 100, 0.0)
        small = Request(1, np.ones(4, dtype=np.int64), 4, 0.0)
        cfgb = BatchingConfig(max_batch=4, block_size=16, num_blocks=40)
        res = simulate_serving([big, small], m, cfgb)
        assert res.num_requests == 2
        # The small request cannot overtake: it finishes after the big
        # one started decoding, so its e2e includes the blocked wait.
        assert res.p99_e2e > res.p50_ttft


class TestServeReportCLI:
    def test_end_to_end(self, tmp_path, capsys):
        from repro.tools.serve_report import main

        rc = main([
            "GPT-5B", "4", "frontier",
            "--rates", "0.5,4",
            "--num-requests", "12",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Serving frontier" in out
        assert "0 mismatches" in out
        doc = json.loads((tmp_path / "BENCH_serving_frontier.json").read_text())
        metrics = doc["metrics"]
        assert len(metrics["frontier"]) == 2
        assert metrics["tokens_per_s_max"] > 0
        assert metrics["engine_smoke"]["token_mismatches_vs_greedy"] == 0
        assert metrics["engine_smoke"]["paged_copied_bytes"] > 0

    def test_dispatcher_knows_serve_report(self):
        from repro.tools import SUBCOMMANDS

        assert "serve-report" in SUBCOMMANDS
