"""Serving simulator tests: analytic costs, the virtual-time loop, the
offered-load frontier, and the serve-report CLI."""

import json

import numpy as np
import pytest

from repro.cluster import FRONTIER, PERLMUTTER
from repro.config import get_model
from repro.serving import BatchingConfig, Request, poisson_trace
from repro.simulate.serving import (
    ServingModel,
    chaos_sweep,
    simulate_serving,
    sweep_offered_load,
)


def small_model(tp=4, algo="flat"):
    return ServingModel(get_model("GPT-5B"), FRONTIER, tp=tp,
                        collective_algo=algo)


class TestServingModelCosts:
    def test_costs_are_positive_and_scale(self):
        m = small_model()
        assert m.prefill_time(64) > 0
        assert m.prefill_time(128) > m.prefill_time(64)
        assert m.decode_step_time(1, 100) > 0
        # Longer context reads more KV.
        assert m.decode_step_time(1, 4000) > m.decode_step_time(1, 100)

    def test_decode_batching_amortizes_the_weight_stream(self):
        """8 sequences in one step must be far cheaper than 8 steps of
        1 — the roofline argument for continuous batching."""
        m = small_model()
        together = m.decode_step_time(8, 800)
        alone = 8 * m.decode_step_time(1, 100)
        assert together < alone / 2

    def test_tp_divides_memory_time(self):
        t1 = ServingModel(get_model("GPT-5B"), FRONTIER, tp=1)
        t8 = ServingModel(get_model("GPT-5B"), FRONTIER, tp=8)
        # More devices stream the weights faster, even after paying
        # the all-reduce the tp=1 instance avoids entirely.
        assert t8.decode_step_time(1, 100) < t1.decode_step_time(1, 100)

    def test_collective_algo_never_slows_the_step(self):
        """"auto" takes min(flat, hierarchical): it can only help."""
        cfg = get_model("GPT-20B")
        flat = ServingModel(cfg, PERLMUTTER, tp=8, collective_algo="flat")
        auto = ServingModel(cfg, PERLMUTTER, tp=8, collective_algo="auto")
        for batch in (1, 16, 64):
            assert auto.decode_step_time(batch, 100) <= (
                flat.decode_step_time(batch, 100)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingModel(get_model("GPT-5B"), FRONTIER, tp=0)
        with pytest.raises(ValueError):
            # GPT-5B has 32 heads; 5 does not divide them.
            ServingModel(get_model("GPT-5B"), FRONTIER, tp=5)


class TestSimulateServing:
    def _trace(self, rate, n=24, seed=0):
        return poisson_trace(rate, n, seed=seed, vocab_size=64,
                             prompt_lens=(16, 64), max_new_tokens=(8, 32))

    def test_deterministic(self):
        m = small_model()
        cfgb = BatchingConfig(max_batch=8, num_blocks=2048)
        a = simulate_serving(self._trace(2.0), m, cfgb)
        b = simulate_serving(self._trace(2.0), m, cfgb)
        assert a == b

    def test_all_requests_finish(self):
        m = small_model()
        res = simulate_serving(self._trace(4.0), m,
                               BatchingConfig(max_batch=8, num_blocks=2048))
        assert res.num_requests == 24
        assert res.generated_tokens == sum(
            r.max_new_tokens for r in self._trace(4.0)
        )
        assert res.makespan > 0
        assert res.p50_e2e <= res.p99_e2e
        assert res.p50_ttft <= res.p99_ttft
        assert 0.0 <= res.slo_attainment <= 1.0

    def test_load_raises_latency_and_throughput(self):
        """The frontier's defining shape: more offered load, more
        tokens/s, worse tail latency."""
        m = small_model()
        cfgb = BatchingConfig(max_batch=8, num_blocks=2048)
        lo, hi = sweep_offered_load(
            [0.2, 50.0], 24, m, cfgb, seed=0,
            prompt_lens=(16, 64), max_new_tokens=(8, 32),
        )
        assert hi.tokens_per_s > lo.tokens_per_s
        assert hi.p99_e2e > lo.p99_e2e
        assert hi.mean_batch > lo.mean_batch

    def test_saturation_breaks_the_slo(self):
        """A single-slot instance under heavy load must queue requests
        past the slowdown SLO."""
        m = small_model()
        res = simulate_serving(
            self._trace(200.0), m,
            BatchingConfig(max_batch=1, num_blocks=2048),
            slo_multiplier=2.0,
        )
        assert res.slo_attainment < 1.0
        assert res.mean_batch <= 1.0

    def test_sweep_holds_request_mix_fixed(self):
        m = small_model()
        cfgb = BatchingConfig(max_batch=8, num_blocks=2048)
        res = sweep_offered_load([0.5, 8.0], 12, m, cfgb, seed=3)
        assert res[0].generated_tokens == res[1].generated_tokens
        assert res[0].offered_load < res[1].offered_load

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate_serving([], small_model())

    def test_head_of_line_semantics_match_engine(self):
        """The sim admits through the same ContinuousBatcher: a huge
        head request blocks later small ones even when they fit."""
        m = small_model()
        big = Request(0, np.ones(400, dtype=np.int64), 100, 0.0)
        small = Request(1, np.ones(4, dtype=np.int64), 4, 0.0)
        cfgb = BatchingConfig(max_batch=4, block_size=16, num_blocks=40)
        res = simulate_serving([big, small], m, cfgb)
        assert res.num_requests == 2
        # The small request cannot overtake: it finishes after the big
        # one started decoding, so its e2e includes the blocked wait.
        assert res.p99_e2e > res.p50_ttft


class TestOverloadSim:
    """Typed non-completions in the simulator: the satellite regression
    (nothing finishing must not crash) plus the shed/deadline paths."""

    def test_nothing_finishes_returns_zero_result(self):
        """Regression: a trace where every request is rejected used to
        die with ZeroDivisionError (slo_attainment) / ValueError
        (makespan max() over an empty finished list)."""
        m = small_model()
        reqs = [
            Request(i, np.ones(400, dtype=np.int64), 100, float(i))
            for i in range(3)
        ]
        res = simulate_serving(
            reqs, m, BatchingConfig(max_batch=4, block_size=16, num_blocks=8)
        )
        assert res.num_requests == 0
        assert res.rejected == 3
        assert res.generated_tokens == 0
        assert res.makespan == 0.0
        assert res.tokens_per_s == 0.0
        assert res.slo_attainment == 0.0
        assert res.p50_ttft == res.p99_e2e == 0.0

    def test_bounded_queue_sheds(self):
        m = small_model()
        reqs = [Request(i, np.ones(8, dtype=np.int64), 4, 0.0)
                for i in range(4)]
        res = simulate_serving(
            reqs, m,
            BatchingConfig(max_batch=1, block_size=16, num_blocks=64,
                           max_waiting=1),
        )
        assert res.num_requests == 1
        assert res.shed == 3

    def test_ttft_deadline_expires_queued_request(self):
        m = small_model()
        big = Request(0, np.ones(64, dtype=np.int64), 200, 0.0)
        late = Request(1, np.ones(8, dtype=np.int64), 4, 0.0)
        res = simulate_serving(
            [big, late], m,
            BatchingConfig(max_batch=1, block_size=16, num_blocks=64,
                           ttft_deadline=1e-6),
        )
        assert res.num_requests == 1
        assert res.deadline_exceeded == 1


class TestChaosSim:
    """MTBF-driven instance failures: graceful degradation, priced
    recompute, and determinism."""

    def _surface(self, mtbfs):
        m = small_model()
        cfgb = BatchingConfig(max_batch=8, num_blocks=2048)
        return chaos_sweep(
            [2.0], mtbfs, 24, m, cfgb,
            prompt_lens=(16, 64), max_new_tokens=(8, 32),
            restart_time=30.0,
        )

    def test_slo_degrades_monotonically_with_fault_rate(self):
        rows = self._surface([None, 10.0, 3.0])
        slo = [row[0].slo_attainment for row in rows]
        assert slo[0] == 1.0
        assert slo[0] >= slo[1] >= slo[2]
        assert slo[2] < 1.0

    def test_failures_preempt_and_charge_recompute(self):
        (row,) = self._surface([3.0])
        res = row[0]
        # Every request still completes — failures cost time, not
        # requests — and the lost KV is recomputed, not conjured.
        assert res.num_requests == 24
        assert res.instance_failures > 0
        assert res.preemptions >= res.instance_failures
        assert res.recompute_tokens > 0

    def test_fault_free_row_matches_plain_sweep(self):
        m = small_model()
        cfgb = BatchingConfig(max_batch=8, num_blocks=2048)
        (row,) = chaos_sweep(
            [2.0], [None], 24, m, cfgb,
            prompt_lens=(16, 64), max_new_tokens=(8, 32),
        )
        plain = sweep_offered_load(
            [2.0], 24, m, cfgb,
            prompt_lens=(16, 64), max_new_tokens=(8, 32),
        )
        assert row[0] == plain[0]

    def test_chaos_deterministic(self):
        a = self._surface([3.0])
        b = self._surface([3.0])
        assert a[0][0] == b[0][0]


class TestServeReportCLI:
    def test_end_to_end(self, tmp_path, capsys):
        from repro.tools.serve_report import main

        rc = main([
            "GPT-5B", "4", "frontier",
            "--rates", "0.5,4",
            "--num-requests", "12",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Serving frontier" in out
        assert "0 mismatches" in out
        doc = json.loads((tmp_path / "BENCH_serving_frontier.json").read_text())
        metrics = doc["metrics"]
        assert len(metrics["frontier"]) == 2
        assert metrics["tokens_per_s_max"] > 0
        assert metrics["engine_smoke"]["token_mismatches_vs_greedy"] == 0
        assert metrics["engine_smoke"]["paged_copied_bytes"] > 0

    def test_chaos_end_to_end(self, tmp_path, capsys):
        from repro.tools.serve_report import main

        rc = main([
            "GPT-5B", "4", "frontier",
            "--rates", "0.5,4",
            "--num-requests", "12",
            "--chaos", "--mtbfs", "inf,5",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Serving chaos surface" in out
        assert "0 mismatches" in out
        doc = json.loads((tmp_path / "BENCH_serving_chaos.json").read_text())
        metrics = doc["metrics"]
        assert len(metrics["surface"]) == 2
        assert metrics["surface"][0]["node_mtbf_s"] is None
        assert len(metrics["surface"][0]["results"]) == 2
        smoke = metrics["chaos_smoke"]
        assert smoke["token_mismatches_vs_greedy"] == 0
        assert smoke["finished"] == smoke["requests"]
        assert smoke["rank_failures"] >= 1
        assert smoke["step_timeouts"] >= 1
        assert smoke["preemptions"] >= 1

    def test_dispatcher_knows_serve_report(self):
        from repro.tools import SUBCOMMANDS

        assert "serve-report" in SUBCOMMANDS
