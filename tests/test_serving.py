"""Serving runtime tests: paged KV mechanics, scheduling, and the
bitwise equivalence of continuous batching to sequential decoding.

The load-bearing contract is the last one: whatever order requests
arrive in and however they interleave in the batch, every request's
greedy tokens must equal a lone :func:`repro.nn.generation.generate_greedy`
run **bitwise** (``assert_array_equal``, no tolerance).  Continuous
batching is a scheduling optimization, never a numerical one.
"""

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.nn.generation import decode_step, generate_greedy, prefill
from repro.nn.transformer import GPT
from repro.serving import (
    BatchingConfig,
    BlockAllocator,
    CacheOutOfBlocks,
    ContinuousBatcher,
    PagedKVCache,
    Request,
    ServingEngine,
    TensorParallelDecoder,
    batched_decode_step,
    bursty_trace,
    poisson_trace,
)
from repro.telemetry import Tracer, telemetry_scope


def model_for(seed=0, layers=2, hidden=32, heads=4, seq=64, vocab=64):
    return GPT(
        GPTConfig(
            name="serve-test", num_layers=layers, hidden_size=hidden,
            num_heads=heads, seq_len=seq, vocab_size=vocab,
        ),
        seed=seed,
    )


class TestArrivalTraces:
    def test_poisson_is_seeded_and_sorted(self):
        a = poisson_trace(2.0, 16, seed=5)
        b = poisson_trace(2.0, 16, seed=5)
        assert len(a) == 16
        for x, y in zip(a, b):
            assert x.arrival_time == y.arrival_time
            np.testing.assert_array_equal(x.prompt, y.prompt)
        times = [r.arrival_time for r in a]
        assert times == sorted(times)
        assert all(r.prompt_len >= 1 for r in a)

    def test_different_seed_different_trace(self):
        a = poisson_trace(2.0, 16, seed=5)
        c = poisson_trace(2.0, 16, seed=6)
        assert any(
            x.arrival_time != y.arrival_time for x, y in zip(a, c)
        )

    def test_bursty_trace_is_burstier_than_poisson(self):
        """Squared coefficient of variation of inter-arrivals must
        exceed the Poisson trace's at matched mean rate."""
        def cv2(reqs):
            gaps = np.diff([r.arrival_time for r in reqs])
            return np.var(gaps) / np.mean(gaps) ** 2

        p = poisson_trace(4.0, 400, seed=1)
        b = bursty_trace(4.0, 400, seed=1, burst_factor=8.0)
        assert cv2(b) > cv2(p)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(0, np.zeros(0, dtype=np.int64), 4, 0.0)
        with pytest.raises(ValueError):
            Request(0, np.zeros((1, 3), dtype=np.int64), 4, 0.0)
        with pytest.raises(ValueError):
            Request(0, np.zeros(3, dtype=np.int64), 0, 0.0)
        r = Request(0, np.asarray([1, 2, 3]), 4, 0.0)
        assert r.total_tokens == 7


class TestBlockAllocator:
    def test_alloc_free_roundtrip(self):
        a = BlockAllocator(8)
        got = a.alloc(5)
        assert len(got) == len(set(got)) == 5
        assert a.num_free == 3
        a.free(got)
        assert a.num_free == 8

    def test_exhaustion_raises(self):
        a = BlockAllocator(4)
        a.alloc(4)
        with pytest.raises(CacheOutOfBlocks):
            a.alloc(1)

    def test_double_free_rejected(self):
        a = BlockAllocator(4)
        got = a.alloc(2)
        a.free(got)
        with pytest.raises(ValueError):
            a.free([got[0]])


class TestPagedKVCache:
    def _roundtrip(self, block_size, chunks):
        """Write ragged chunks through the paged layout and compare the
        gathered view with a plain concatenation."""
        rng = np.random.default_rng(0)
        kv = PagedKVCache(2, 2, 4, block_size=block_size, num_blocks=64)
        kv.add_sequence(7)
        ks, vs = [], []
        for n in chunks:
            k = rng.standard_normal((2, n, 4))
            v = rng.standard_normal((2, n, 4))
            kv.reserve(7, n)
            for layer in range(2):
                kv.write(7, layer, k, v)
            kv.advance(7, n)
            ks.append(k)
            vs.append(v)
        k_all, v_all = kv.gather(7, 0)
        np.testing.assert_array_equal(k_all, np.concatenate(ks, axis=1))
        np.testing.assert_array_equal(v_all, np.concatenate(vs, axis=1))

    def test_roundtrip_block_aligned(self):
        self._roundtrip(4, [4, 4, 8])

    def test_roundtrip_straddles_blocks(self):
        self._roundtrip(4, [3, 5, 1, 7, 2])

    def test_roundtrip_one_token_blocks(self):
        self._roundtrip(1, [1, 1, 3])

    def test_write_without_reserve_raises(self):
        kv = PagedKVCache(1, 2, 4, block_size=4, num_blocks=8)
        kv.add_sequence(0)
        with pytest.raises(CacheOutOfBlocks):
            kv.write(0, 0, np.zeros((2, 5, 4)), np.zeros((2, 5, 4)))

    def test_free_sequence_returns_blocks(self):
        kv = PagedKVCache(1, 2, 4, block_size=4, num_blocks=8)
        kv.add_sequence(0)
        kv.reserve(0, 13)  # 4 blocks
        assert kv.allocator.num_free == 4
        kv.free_sequence(0)
        assert kv.allocator.num_free == 8
        assert kv.num_sequences == 0

    def test_blocks_are_not_shared_between_sequences(self):
        kv = PagedKVCache(1, 1, 2, block_size=2, num_blocks=8)
        for s in (0, 1):
            kv.add_sequence(s)
            kv.reserve(s, 4)
        a = np.full((1, 4, 2), 1.0)
        b = np.full((1, 4, 2), 2.0)
        kv.write(0, 0, a, a)
        kv.write(1, 0, b, b)
        kv.advance(0, 4)
        kv.advance(1, 4)
        np.testing.assert_array_equal(kv.gather(0, 0)[0], a)
        np.testing.assert_array_equal(kv.gather(1, 0)[0], b)

    def test_copied_bytes_counts_writes_linearly(self):
        kv = PagedKVCache(1, 2, 4, block_size=8, num_blocks=64)
        kv.add_sequence(0)
        k = np.zeros((2, 1, 4))
        steps = 200
        kv.reserve(0, steps)
        for _ in range(steps):
            kv.write(0, 0, k, k)
            kv.advance(0, 1)
        # Exactly the bytes written, once each: no per-step re-copying.
        assert kv.copied_bytes == steps * 2 * k.nbytes


class TestContinuousBatcher:
    def _req(self, i, prompt_len=4, new=4, t=0.0):
        return Request(i, np.ones(prompt_len, dtype=np.int64), new, t)

    def test_fifo_within_capacity(self):
        b = ContinuousBatcher(BatchingConfig(max_batch=2, block_size=4,
                                             num_blocks=64))
        for i in range(4):
            b.enqueue(self._req(i))
        got = b.admit(0, 64)
        assert [r.request_id for r in got] == [0, 1]
        assert b.num_waiting == 2

    def test_head_of_line_blocking(self):
        cfgb = BatchingConfig(max_batch=4, block_size=4, num_blocks=16,
                              reservation="worst_case")
        b = ContinuousBatcher(cfgb)
        b.enqueue(self._req(0, prompt_len=40, new=20))  # 15 blocks
        b.enqueue(self._req(1, prompt_len=4, new=4))    # 2 blocks
        got = b.admit(0, 10)  # head does not fit -> nothing admitted
        assert got == []
        got = b.admit(0, 16)
        assert [r.request_id for r in got] == [0]

    def test_optimistic_reservation_admits_more(self):
        """Optimistic admission reserves only prompt+1, so the same free
        pool admits the head *and* the request behind it."""
        cfgb = BatchingConfig(max_batch=4, block_size=4, num_blocks=16)
        b = ContinuousBatcher(cfgb)
        b.enqueue(self._req(0, prompt_len=40, new=20))  # 11 blocks optimistic
        b.enqueue(self._req(1, prompt_len=4, new=4))    # 2 blocks
        got = b.admit(0, 16)
        assert [r.request_id for r in got] == [0, 1]

    def test_never_fitting_request_rejected_at_enqueue(self):
        b = ContinuousBatcher(BatchingConfig(max_batch=4, block_size=4,
                                             num_blocks=4))
        rej = b.enqueue(self._req(0, prompt_len=30, new=30))
        assert rej is not None and rej.cause == "rejected"
        assert b.num_waiting == 0
        assert [r.cause for r in b.drain_rejections()] == ["rejected"]
        assert b.drain_rejections() == []  # drained

    def test_bounded_queue_sheds_overflow(self):
        b = ContinuousBatcher(BatchingConfig(max_batch=2, block_size=4,
                                             num_blocks=64, max_waiting=2))
        outcomes = [b.enqueue(self._req(i)) for i in range(4)]
        assert outcomes[0] is None and outcomes[1] is None
        assert [o.cause for o in outcomes[2:]] == ["shed", "shed"]
        assert b.num_waiting == 2

    def test_deadline_sweeps_whole_queue(self):
        """An expired head is shed without starving live requests behind
        it (the starvation bound of the deadline policy)."""
        b = ContinuousBatcher(BatchingConfig(max_batch=1, block_size=4,
                                             num_blocks=64, ttft_deadline=5.0))
        b.enqueue(self._req(0, t=0.0))
        b.enqueue(self._req(1, t=4.0))
        got = b.admit(1, 64, now=6.0)  # batch full: nothing admits...
        assert got == []
        assert [r.request.request_id for r in b.drain_rejections()] == [0]
        got = b.admit(0, 64, now=6.5)  # ...but request 1 is not starved
        assert [r.request_id for r in got] == [1]


class TestBatchedDecodeBitwise:
    def test_batched_rows_equal_single_sequence_decode(self):
        """(B, V) batched logits == each sequence's lone cached
        decode_step, bit for bit."""
        model = model_for(seed=3)
        rng = np.random.default_rng(2)
        prompts = [rng.integers(0, 64, n) for n in (3, 9, 14)]
        kv = PagedKVCache(2, 4, 8, block_size=4, num_blocks=64)
        for s, p in enumerate(prompts):
            kv.add_sequence(s)
            kv.reserve(s, len(p) + 2)
            _, cache = prefill(model, p[None, :])
            for layer, (k, v) in enumerate(zip(cache.keys, cache.values)):
                kv.write(s, layer, k[0], v[0])
            kv.advance(s, len(p))
        tok = rng.integers(0, 64, 3)
        batched = batched_decode_step(model, tok, kv, [0, 1, 2])
        for s, p in enumerate(prompts):
            _, cache = prefill(model, p[None, :])
            single = decode_step(model, tok[s : s + 1], cache)
            np.testing.assert_array_equal(batched[s], single[0])

    def test_shape_validation(self):
        model = model_for()
        kv = PagedKVCache(2, 4, 8, block_size=4, num_blocks=16)
        kv.add_sequence(0)
        with pytest.raises(ValueError):
            batched_decode_step(model, np.zeros((2,), dtype=int), kv, [0])


class TestEngineEquivalence:
    """Satellite 4: the property-based fuzz of the tentpole contract."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_continuous_batching_matches_sequential_greedy(self, seed):
        """Random ragged trace through the engine == per-request
        generate_greedy, token for token, for every request."""
        model = model_for(seed=seed)
        rng = np.random.default_rng(100 + seed)
        rate = float(rng.uniform(0.2, 5.0))
        reqs = poisson_trace(
            rate, 10, seed=seed, vocab_size=64,
            prompt_lens=(1, 12), max_new_tokens=(1, 10),
        )
        engine = ServingEngine(
            model,
            BatchingConfig(max_batch=int(rng.integers(2, 5)),
                           block_size=int(rng.integers(2, 9)),
                           num_blocks=96),
        )
        finished = engine.run(reqs)
        assert sorted(f.request.request_id for f in finished) == list(
            range(10)
        )
        for fin in finished:
            ref = generate_greedy(
                model, fin.request.prompt, fin.request.max_new_tokens
            )
            np.testing.assert_array_equal(fin.tokens, ref)

    def test_admission_order_does_not_change_tokens(self):
        """The same requests arriving in a different order (hence
        batching into different cohorts) still decode identically."""
        model = model_for(seed=9)
        rng = np.random.default_rng(7)
        prompts = [rng.integers(0, 64, n) for n in (2, 7, 11, 5, 3)]
        outs = {}
        for order_seed in (0, 1):
            order = np.random.default_rng(order_seed).permutation(5)
            reqs = [
                Request(int(i), prompts[i], 6, float(j))
                for j, i in enumerate(order)
            ]
            engine = ServingEngine(
                model, BatchingConfig(max_batch=2, block_size=4,
                                      num_blocks=64)
            )
            fins = engine.run(reqs)
            outs[order_seed] = {
                f.request.request_id: f.tokens for f in fins
            }
        for rid in range(5):
            np.testing.assert_array_equal(outs[0][rid], outs[1][rid])

    def test_all_blocks_returned_after_drain(self):
        model = model_for(seed=2)
        reqs = poisson_trace(1.0, 6, seed=0, vocab_size=64,
                             prompt_lens=(2, 8), max_new_tokens=(2, 8))
        engine = ServingEngine(
            model, BatchingConfig(max_batch=3, block_size=8, num_blocks=32)
        )
        engine.run(reqs)
        assert engine.kv.num_sequences == 0
        assert engine.kv.allocator.num_free == 32

    def test_eos_stops_early(self):
        model = model_for(seed=4)
        prompt = np.asarray([1, 2, 3])
        ref = generate_greedy(model, prompt, 8)
        eos = int(ref[2])
        stop = int(np.where(ref == eos)[0][0])  # first occurrence wins
        engine = ServingEngine(model, eos_id=eos)
        fins = engine.run([Request(0, prompt, 8, 0.0)])
        assert fins[0].num_tokens == stop + 1
        np.testing.assert_array_equal(fins[0].tokens, ref[: stop + 1])

    def test_oversized_request_rejected(self):
        """Over-context requests end as typed rejections, not exceptions
        (one poison request must not kill the serving loop)."""
        model = model_for(seq=16)
        engine = ServingEngine(model)
        rej = engine.submit(Request(0, np.ones(10, dtype=np.int64), 10, 0.0))
        assert rej is not None and rej.cause == "rejected"
        fins = engine.run([
            Request(1, np.ones(20, dtype=np.int64), 10, 0.0),  # poison
            Request(2, np.asarray([1, 2, 3]), 4, 0.0),
        ])
        assert [f.request.request_id for f in fins] == [2]
        assert [r.request.request_id for r in engine.rejected] == [0, 1]
        assert all(r.cause == "rejected" for r in engine.rejected)

    def test_latency_metadata_and_telemetry(self):
        model = model_for(seed=1)
        reqs = poisson_trace(2.0, 5, seed=3, vocab_size=64,
                             prompt_lens=(2, 6), max_new_tokens=(2, 6))
        tracer = Tracer()
        with telemetry_scope(tracer):
            engine = ServingEngine(model)
            fins = engine.run(reqs)
        for f in fins:
            assert f.e2e_latency >= f.ttft >= 0.0
            assert f.finish_step >= f.first_token_step == f.admitted_step
        m = tracer.metrics
        assert m.value("serve.requests") == 5
        assert m.value("serve.finished") == 5
        assert m.value("serve.decode_tokens") == sum(
            f.num_tokens - 1 for f in fins
        )
        assert m.value("serve.prefill_tokens") == sum(
            f.request.prompt_len for f in fins
        )


class TestTensorParallelDecoder:
    def test_tp_tokens_match_serial_greedy(self):
        model = model_for(seed=7)
        from repro.core import Grid4D, GridConfig

        dec = TensorParallelDecoder(model, Grid4D(GridConfig(2, 1, 1, 1)),
                                    block_size=8, num_blocks=64)
        prompt = np.random.default_rng(5).integers(0, 64, 6)
        np.testing.assert_array_equal(
            dec.generate_greedy(prompt, 8),
            generate_greedy(model, prompt, 8),
        )

    def test_tp_logits_match_serial_to_rounding(self):
        """Ring partial-sum order differs from the serial GEMM's, so TP
        logits agree to 1e-12, not bitwise (same bound the training-side
        parallel==serial tests use)."""
        model = model_for(seed=7)
        from repro.core import Grid4D, GridConfig

        dec = TensorParallelDecoder(model, Grid4D(GridConfig(4, 1, 1, 1)),
                                    block_size=8, num_blocks=64)
        prompt = np.random.default_rng(6).integers(0, 64, 9)
        serial, _ = prefill(model, prompt[None, :])
        dec.add_sequence(0, len(prompt) + 1)
        tp = dec.prefill(0, prompt)
        np.testing.assert_allclose(tp, serial[0], rtol=1e-12, atol=1e-12)

    def test_tp_batched_step_bitwise_equals_tp_single(self):
        """Within the TP path, batching is bitwise-free, exactly as in
        the serial engine."""
        model = model_for(seed=8)
        from repro.core import Grid4D, GridConfig

        rng = np.random.default_rng(3)
        p1, p2 = rng.integers(0, 64, 5), rng.integers(0, 64, 11)

        def make():
            return TensorParallelDecoder(
                model, Grid4D(GridConfig(2, 1, 1, 1)),
                block_size=8, num_blocks=64,
            )

        both = make()
        both.add_sequence(0, 16)
        both.add_sequence(1, 16)
        both.prefill(0, p1)
        both.prefill(1, p2)
        batched = both.decode_step(np.asarray([3, 7]), [0, 1])
        for sid, prompt, tok in ((0, p1, 3), (1, p2, 7)):
            lone = make()
            lone.add_sequence(0, 16)
            lone.prefill(0, prompt)
            single = lone.decode_step(np.asarray([tok]), [0])
            np.testing.assert_array_equal(batched[sid], single[0])

    def test_hierarchical_routing_matches_flat(self):
        """Tokens survive the two-level collective path untouched."""
        from repro.cluster import FRONTIER, Placement
        from repro.core import Grid4D, GridConfig

        model = model_for(seed=7)
        grid = Grid4D(
            GridConfig(4, 1, 1, 1, collective_algo="hierarchical"),
            placement=Placement(FRONTIER, 4),
        )
        dec = TensorParallelDecoder(model, grid, block_size=8,
                                    num_blocks=64)
        prompt = np.random.default_rng(5).integers(0, 64, 6)
        np.testing.assert_array_equal(
            dec.generate_greedy(prompt, 8),
            generate_greedy(model, prompt, 8),
        )

    def test_divisibility_validation(self):
        from repro.core import Grid4D, GridConfig

        model = model_for(heads=4, vocab=64)
        with pytest.raises(ValueError):
            TensorParallelDecoder(model, Grid4D(GridConfig(3, 1, 1, 1)))
