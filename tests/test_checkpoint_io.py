"""Tests for sharded checkpoint save/load and cross-grid resharding."""

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.core import (
    Grid4D,
    GridConfig,
    ParallelGPT,
    load_checkpoint,
    reshard,
    save_checkpoint,
)
from repro.nn import GPT, SGD


def tiny_config():
    return GPTConfig(
        name="ck", num_layers=2, hidden_size=16, num_heads=4,
        seq_len=10, vocab_size=32,
    )


def batch(cfg, b=4, seed=0):
    return np.random.default_rng(seed).integers(0, cfg.vocab_size, (b, 8))


class TestSerialCheckpoint:
    def test_roundtrip(self, tmp_path):
        cfg = tiny_config()
        a = GPT(cfg, seed=1)
        save_checkpoint(a, tmp_path / "ck.npz")
        b = GPT(cfg, seed=2)
        load_checkpoint(b, tmp_path / "ck.npz")
        ids = batch(cfg)
        assert a.loss(ids).item() == pytest.approx(b.loss(ids).item(), rel=1e-14)

    def test_strict_loading(self, tmp_path):
        cfg = tiny_config()
        save_checkpoint(GPT(cfg, seed=0), tmp_path / "ck.npz")
        other = GPT(cfg.scaled(hidden_size=24, num_heads=4), seed=0)
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(other, tmp_path / "ck.npz")

    def test_creates_parent_dirs(self, tmp_path):
        cfg = tiny_config()
        save_checkpoint(GPT(cfg, seed=0), tmp_path / "a" / "b" / "ck.npz")
        assert (tmp_path / "a" / "b" / "ck.npz").exists()


class TestParallelCheckpoint:
    def test_parallel_save_serial_load(self, tmp_path):
        """A 4D model's consolidated checkpoint restores into a serial
        model that computes identically."""
        cfg = tiny_config()
        serial = GPT(cfg, seed=3)
        par = ParallelGPT.from_serial(serial, Grid4D(GridConfig(2, 1, 2)))
        save_checkpoint(par, tmp_path / "par.npz")
        restored = GPT(cfg, seed=99)
        load_checkpoint(restored, tmp_path / "par.npz")
        ids = batch(cfg)
        assert restored.loss(ids).item() == pytest.approx(
            serial.loss(ids).item(), rel=1e-12
        )

    def test_serial_save_parallel_load(self, tmp_path):
        cfg = tiny_config()
        serial = GPT(cfg, seed=4)
        save_checkpoint(serial, tmp_path / "ser.npz")
        par = ParallelGPT(Grid4D(GridConfig(1, 2, 2)), cfg, seed=0)
        load_checkpoint(par, tmp_path / "ser.npz")
        ids = batch(cfg)
        assert par.loss(ids).item() == pytest.approx(
            serial.loss(ids).item(), rel=1e-12
        )

    def test_training_resumes_identically_across_grids(self, tmp_path):
        """Train on grid A, checkpoint, resume on grid B: the loss curve
        continues exactly as uninterrupted serial training would."""
        cfg = tiny_config()
        ids = batch(cfg, b=4, seed=7)

        # Reference: 4 serial steps.
        ref = GPT(cfg, seed=5)
        ref_opt = SGD(ref.parameters(), lr=0.05)
        ref_losses = []
        for _ in range(4):
            loss = ref.loss(ids)
            ref_losses.append(loss.item())
            ref.zero_grad()
            loss.backward()
            ref_opt.step()

        # Phase 1: 2 steps on grid (2,1,2).
        par_a = ParallelGPT.from_serial(GPT(cfg, seed=5), Grid4D(GridConfig(2, 1, 2)))
        opt_a = SGD(par_a.parameters(), lr=0.05)
        got = []
        for _ in range(2):
            loss = par_a.loss(ids)
            got.append(loss.item())
            par_a.zero_grad()
            loss.backward()
            opt_a.step()
        save_checkpoint(par_a, tmp_path / "phase1.npz")

        # Phase 2: resume on grid (1,2,1) with a fresh optimizer-free SGD.
        par_b = ParallelGPT(Grid4D(GridConfig(1, 2, 1)), cfg, seed=0)
        load_checkpoint(par_b, tmp_path / "phase1.npz")
        opt_b = SGD(par_b.parameters(), lr=0.05)
        for _ in range(2):
            loss = par_b.loss(ids)
            got.append(loss.item())
            par_b.zero_grad()
            loss.backward()
            opt_b.step()

        np.testing.assert_allclose(got, ref_losses, rtol=1e-9)


class TestReshard:
    @pytest.mark.parametrize(
        "src,dst",
        [
            ((2, 1, 2, 1), (1, 2, 1, 1)),
            ((1, 1, 4, 1), (2, 2, 1, 1)),
            ((2, 2, 1, 1), (1, 1, 1, 2)),
        ],
    )
    def test_reshard_preserves_function(self, src, dst):
        cfg = tiny_config()
        serial = GPT(cfg, seed=6)
        a = ParallelGPT.from_serial(serial, Grid4D(GridConfig(*src)))
        b = reshard(a, Grid4D(GridConfig(*dst)))
        ids = batch(cfg, b=4)
        assert b.loss(ids).item() == pytest.approx(
            a.loss(ids).item(), rel=1e-12
        )

    def test_reshard_is_deep_copy(self):
        cfg = tiny_config()
        a = ParallelGPT.from_serial(GPT(cfg, seed=0), Grid4D(GridConfig(2, 1, 1)))
        b = reshard(a, Grid4D(GridConfig(1, 2, 1)))
        # Mutating b must not touch a.
        for p in b.parameters():
            p.data += 1.0
        ids = batch(cfg)
        assert a.loss(ids).item() != pytest.approx(b.loss(ids).item())


class TestTrainingState:
    def test_bit_exact_resume_serial(self, tmp_path):
        """Save mid-training with optimizer state; resuming continues
        bit-for-bit identically to the uninterrupted run."""
        from repro.core import load_training_state, save_training_state
        from repro.nn import AdamW

        cfg = tiny_config()
        ids = batch(cfg, b=4, seed=9)

        # Uninterrupted: 6 AdamW steps.
        ref = GPT(cfg, seed=8)
        ref_opt = AdamW(ref.parameters(), lr=1e-2)
        ref_losses = []
        for _ in range(6):
            loss = ref.loss(ids)
            ref_losses.append(loss.item())
            ref.zero_grad()
            loss.backward()
            ref_opt.step()

        # Interrupted after 3 steps.
        a = GPT(cfg, seed=8)
        a_opt = AdamW(a.parameters(), lr=1e-2)
        got = []
        for _ in range(3):
            loss = a.loss(ids)
            got.append(loss.item())
            a.zero_grad()
            loss.backward()
            a_opt.step()
        save_training_state(a, a_opt, tmp_path / "state.npz")

        b = GPT(cfg, seed=123)  # different init; fully overwritten
        b_opt = AdamW(b.parameters(), lr=1e-2)
        load_training_state(b, b_opt, tmp_path / "state.npz")
        assert b_opt.t == 3
        for _ in range(3):
            loss = b.loss(ids)
            got.append(loss.item())
            b.zero_grad()
            loss.backward()
            b_opt.step()

        np.testing.assert_array_equal(got, ref_losses)
        for (n, p), (_, q) in zip(
            ref.named_parameters(), b.named_parameters()
        ):
            np.testing.assert_array_equal(p.data, q.data)

    def test_bit_exact_resume_parallel(self, tmp_path):
        """Same-grid resume of a 4D model, optimizer moments included."""
        from repro.core import load_training_state, save_training_state
        from repro.nn import AdamW

        cfg = tiny_config()
        ids = batch(cfg, b=4, seed=10)
        grid = Grid4D(GridConfig(2, 1, 2))
        a = ParallelGPT.from_serial(GPT(cfg, seed=1), grid)
        a_opt = AdamW(a.parameters(), lr=1e-2)
        for _ in range(2):
            loss = a.loss(ids)
            a.zero_grad()
            loss.backward()
            a_opt.step()
        save_training_state(a, a_opt, tmp_path / "p.npz")

        b = ParallelGPT(Grid4D(GridConfig(2, 1, 2)), cfg, seed=99)
        b_opt = AdamW(b.parameters(), lr=1e-2)
        load_training_state(b, b_opt, tmp_path / "p.npz")

        la = a.loss(ids)
        lb = b.loss(ids)
        assert la.item() == lb.item()
        a.zero_grad(); la.backward(); a_opt.step()
        b.zero_grad(); lb.backward(); b_opt.step()
        for (n, p), (_, q) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(p.data, q.data)

    def test_layout_mismatch_rejected(self, tmp_path):
        from repro.core import load_training_state, save_training_state
        from repro.nn import AdamW

        cfg = tiny_config()
        a = ParallelGPT(Grid4D(GridConfig(2, 1, 1)), cfg, seed=0)
        a_opt = AdamW(a.parameters(), lr=1e-2)
        save_training_state(a, a_opt, tmp_path / "s.npz")
        b = ParallelGPT(Grid4D(GridConfig(1, 2, 1)), cfg, seed=0)
        b_opt = AdamW(b.parameters(), lr=1e-2)
        with pytest.raises((KeyError, ValueError)):
            load_training_state(b, b_opt, tmp_path / "s.npz")

    def test_optimizer_coverage_check(self, tmp_path):
        from repro.core import save_training_state
        from repro.nn import AdamW

        cfg = tiny_config()
        m = GPT(cfg, seed=0)
        partial_opt = AdamW(m.parameters()[:2], lr=1e-2)
        with pytest.raises(ValueError):
            save_training_state(m, partial_opt, tmp_path / "x.npz")


class TestReshardRoundTripValidated:
    """Satellite of the schedule-validator work: a checkpoint saved under
    one 4D grid and restored under a different one must reproduce every
    parameter bit-for-bit, and the training step executed on the new grid
    must present a validator-clean collective schedule."""

    @pytest.mark.parametrize(
        "src,dst",
        [
            ((2, 1, 2, 1), (1, 2, 1, 2)),
            ((2, 2, 1, 1), (1, 1, 4, 1)),
            ((1, 1, 4, 1), (2, 2, 1, 1)),
        ],
    )
    def test_cross_grid_roundtrip_bit_identical_and_clean(
        self, tmp_path, src, dst
    ):
        from repro.runtime import CommTracer, validate_schedule

        cfg = tiny_config()
        serial = GPT(cfg, seed=7)
        src_grid = Grid4D(GridConfig(*src))
        par_src = ParallelGPT.from_serial(serial, src_grid)
        save_checkpoint(par_src, tmp_path / "ck.npz")

        tracer = CommTracer()
        dst_grid = Grid4D(GridConfig(*dst), tracer=tracer)
        par_dst = ParallelGPT(dst_grid, cfg, seed=99)  # different init
        load_checkpoint(par_dst, tmp_path / "ck.npz")

        # Bit-identical parameters after the save -> reshard -> load trip.
        restored = par_dst.gather_state_to_serial()
        for (n1, p1), (n2, p2) in zip(
            serial.named_parameters(), restored.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

        # The training step on the resharded model is schedule-clean.
        gz, gd = dst[2], dst[3]
        ids = batch(cfg, b=2 * gz * gd, seed=5)
        par_dst.loss(ids).backward()
        assert tracer.events, "resharded step recorded no schedule"
        assert validate_schedule(tracer) == []

    def test_in_memory_reshard_bit_identical_and_clean(self):
        from repro.runtime import CommTracer, validate_schedule

        cfg = tiny_config()
        serial = GPT(cfg, seed=11)
        par = ParallelGPT.from_serial(serial, Grid4D(GridConfig(2, 2, 1, 1)))
        tracer = CommTracer()
        new_grid = Grid4D(GridConfig(1, 1, 2, 2), tracer=tracer)
        resharded = reshard(par, new_grid)
        for (n1, p1), (n2, p2) in zip(
            serial.named_parameters(),
            resharded.gather_state_to_serial().named_parameters(),
        ):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)
        resharded.loss(batch(cfg, b=4, seed=6)).backward()
        assert validate_schedule(tracer) == []
