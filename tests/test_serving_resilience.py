"""Chaos tests for the failure-hardened serving stack.

The contract under test (ISSUE 8): with kills, delayed collectives,
KV-pressure preemption, and overload injected, every request that
*completes* emits greedy tokens bitwise equal to a lone
``generate_greedy`` run, every request that does not complete ends in a
typed outcome, and the engine itself never dies with an unhandled
exception — the only escape is the typed ``DecodeRankFailure`` when the
topology is genuinely unservable.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPTConfig
from repro.core.grid import Grid4D, GridConfig
from repro.nn.generation import generate_greedy
from repro.nn.transformer import GPT
from repro.runtime import (
    DecodeRankFailure,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.serving import (
    BatchingConfig,
    ContinuousBatcher,
    Request,
    ResilientTPEngine,
    ServingEngine,
    poisson_trace,
)

CFG = GPTConfig(
    name="chaos-test", num_layers=2, hidden_size=32, num_heads=4,
    seq_len=64, vocab_size=64,
)


@pytest.fixture(scope="module")
def model():
    return GPT(CFG, seed=0)


def trace(n=8, seed=0, rate=1.0):
    return poisson_trace(
        rate, n, seed=seed, vocab_size=CFG.vocab_size,
        prompt_lens=(2, 10), max_new_tokens=(4, 12),
    )


def assert_bitwise_vs_greedy(model, finished):
    for fin in finished:
        ref = generate_greedy(
            model, fin.request.prompt, fin.request.max_new_tokens
        )
        np.testing.assert_array_equal(fin.tokens, ref)


def make_engine(model, faults=(), **cfg_kwargs):
    defaults = dict(max_batch=4, block_size=8, num_blocks=16)
    defaults.update(cfg_kwargs)
    injector = (
        FaultInjector(
            FaultPlan(faults=tuple(faults)),
            retry=RetryPolicy(timeout=2.0, max_retries=2),
        )
        if faults
        else None
    )
    return ResilientTPEngine(
        model,
        Grid4D(GridConfig(2, 1, 1, 1)),
        BatchingConfig(**defaults),
        injector=injector,
    )


class TestPreemptionIdentity:
    """KV-pressure preemption on the serial engine: recompute-restart
    must be invisible in the emitted tokens."""

    def test_preempted_requests_match_lone_greedy_bitwise(self, model):
        # 6 blocks x 8 tokens = 48 pooled tokens cannot hold 4 live
        # sequences of up to 22 tokens: optimistic admission must
        # preempt and later recompute.
        engine = ServingEngine(
            model, BatchingConfig(max_batch=4, block_size=8, num_blocks=6)
        )
        finished = engine.run(trace())
        assert len(finished) == 8
        assert sum(f.preemptions for f in finished) > 0
        assert_bitwise_vs_greedy(model, finished)

    def test_progress_guarantee_no_livelock(self, model):
        """The oldest sequence is never sacrificed for a younger one, so
        even a pool barely larger than one worst-case request drains."""
        engine = ServingEngine(
            model, BatchingConfig(max_batch=4, block_size=8, num_blocks=4)
        )
        finished = engine.run(trace())
        assert len(finished) + len(engine.rejected) == 8
        assert_bitwise_vs_greedy(model, finished)


class TestChaosTPDecode:
    def test_kill_shrinks_group_and_preserves_tokens(self, model):
        engine = make_engine(
            model, faults=[FaultSpec(kind="kill", rank=1, step=3)]
        )
        finished = engine.run(trace())
        rep = engine.report()
        assert rep.rank_failures == 1
        assert len(rep.shrink_history) == 1
        assert rep.shrink_history[0][1:] == (2, 1)
        assert engine.decoder.gx == 1
        assert rep.recompute_tokens > 0
        assert len(finished) == 8
        assert_bitwise_vs_greedy(model, finished)

    def test_covered_delay_absorbed(self, model):
        # delay 1.5s against a retry budget of 2+4+8s: the watchdog
        # covers it; no timeout surfaces and tokens are untouched.
        engine = make_engine(
            model,
            faults=[
                FaultSpec(
                    kind="delay_wait", op="all_reduce", match=4, delay=1.5
                )
            ],
        )
        finished = engine.run(trace())
        assert engine.report().step_timeouts == 0
        assert len(finished) == 8
        assert_bitwise_vs_greedy(model, finished)

    def test_beyond_budget_delay_retries_forward(self, model):
        engine = make_engine(
            model,
            faults=[
                FaultSpec(
                    kind="delay_wait", op="all_reduce", match=4, delay=1e9
                )
            ],
        )
        finished = engine.run(trace())
        rep = engine.report()
        assert rep.step_timeouts >= 1
        assert len(finished) == 8
        assert_bitwise_vs_greedy(model, finished)

    def test_all_ranks_dead_is_typed(self, model):
        engine = make_engine(
            model,
            faults=[
                FaultSpec(kind="kill", rank=0, step=2),
                FaultSpec(kind="kill", rank=1, step=2),
            ],
        )
        with pytest.raises(DecodeRankFailure):
            engine.run(trace())

    def test_kill_plus_delay_plus_preemption_compose(self, model):
        """The full adversary at once: fail-stop, transient delay, and a
        KV pool small enough to force preemption."""
        engine = make_engine(
            model,
            faults=[
                FaultSpec(kind="kill", rank=1, step=3),
                FaultSpec(
                    kind="delay_wait", op="all_reduce", match=5, delay=1e9
                ),
                FaultSpec(
                    kind="delay_wait", op="all_reduce", match=9, delay=1.5
                ),
            ],
            num_blocks=6,
        )
        finished = engine.run(trace())
        rep = engine.report()
        assert rep.rank_failures == 1
        assert rep.step_timeouts >= 1
        assert rep.preemptions >= 1
        assert len(finished) == 8
        assert_bitwise_vs_greedy(model, finished)

    def test_never_crashes_across_fault_load_matrix(self, model):
        """Graceful degradation, exhaustively: every fault x load cell
        completes with typed outcomes and bitwise-identical tokens."""
        fault_variants = [
            [],
            [FaultSpec(kind="kill", rank=1, step=2)],
            [FaultSpec(kind="kill", rank=1, step=5)],
            [
                FaultSpec(
                    kind="delay_wait", op="all_reduce", match=3, delay=1e9
                )
            ],
            [
                FaultSpec(kind="kill", rank=1, step=4),
                FaultSpec(
                    kind="delay_wait", op="all_gather", match=2, delay=1e9
                ),
            ],
        ]
        for rate in (0.25, 4.0):
            reqs = trace(n=6, rate=rate)
            for faults in fault_variants:
                engine = make_engine(
                    model, faults=faults, num_blocks=6, max_waiting=4,
                )
                finished = engine.run(reqs)
                assert len(finished) + len(engine.rejected) == len(reqs)
                for rej in engine.rejected:
                    assert rej.cause in ("rejected", "shed", "deadline")
                assert_bitwise_vs_greedy(model, finished)


class TestTypedOutcomeAccounting:
    def test_every_request_finishes_or_is_typed(self, model):
        """Overload + an unservable poison request: the ledger balances
        and every non-completion carries a cause."""
        reqs = trace(n=10)
        poison = Request(
            99, np.ones(CFG.seq_len, dtype=np.int64), 10,
            reqs[3].arrival_time,
        )
        all_reqs = reqs + [poison]
        engine = make_engine(model, num_blocks=6, max_waiting=2)
        finished = engine.run(all_reqs)
        rep = engine.report()
        assert len(finished) + len(engine.rejected) == len(all_reqs)
        assert rep.num_finished == len(finished)
        assert sum(rep.rejected_by_cause.values()) == len(engine.rejected)
        assert rep.rejected_by_cause.get("rejected", 0) >= 1  # the poison
        assert_bitwise_vs_greedy(model, finished)


class TestAdmissionDeterminism:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_identical_inputs_identical_decisions(self, seed):
        """Property: the batcher is a pure function of its input
        sequence — same arrivals, same admit calls, same free-block
        readings => the same admissions and the same typed rejections."""

        def run_once():
            rng = np.random.default_rng(seed)
            cfg = BatchingConfig(
                max_batch=4, block_size=8, num_blocks=32,
                max_waiting=4, ttft_deadline=5.0,
            )
            b = ContinuousBatcher(cfg)
            log = []
            t = 0.0
            for i in range(20):
                t += float(rng.exponential(1.0))
                prompt = np.ones(int(rng.integers(1, 40)), dtype=np.int64)
                req = Request(i, prompt, int(rng.integers(1, 20)), t)
                rej = b.enqueue(req, now=t)
                log.append((i, rej.cause if rej else None))
                admitted = b.admit(
                    int(rng.integers(0, 4)), int(rng.integers(0, 33)), now=t
                )
                log.append(tuple(r.request_id for r in admitted))
                log.append(
                    tuple(
                        (r.request.request_id, r.cause)
                        for r in b.drain_rejections()
                    )
                )
            return log

        assert run_once() == run_once()

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_starvation_bound(self, seed):
        """Property: one admit call sweeps *every* expired request —
        nothing sits in the queue past its deadline, even behind a
        blocked head (the deadline sweep is the starvation bound)."""
        rng = np.random.default_rng(seed)
        cfg = BatchingConfig(
            max_batch=4, block_size=8, num_blocks=64, ttft_deadline=2.0
        )
        b = ContinuousBatcher(cfg)
        for i in range(12):
            arrival = float(rng.uniform(0.0, 10.0))
            prompt = np.ones(int(rng.integers(1, 30)), dtype=np.int64)
            b.enqueue(
                Request(i, prompt, int(rng.integers(1, 10)), arrival),
                now=arrival,
            )
        now = 8.0
        b.admit(int(rng.integers(0, 4)), int(rng.integers(0, 65)), now=now)
        drained = b.drain_rejections()
        for rej in drained:
            if rej.cause == "deadline":
                assert rej.request.arrival_time + 2.0 <= now
        # Nothing still waiting is past its budget.
        for req in b._waiting:
            assert req.arrival_time + 2.0 > now
