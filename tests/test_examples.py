"""Smoke tests: every example script runs to completion.

Examples are the library's front door; a broken example is a broken
deliverable, so each one executes end to end here (with the smallest
arguments where the script takes any).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "choose_configuration.py",
        "weak_scaling_study.py",
        "memorization_study.py",
        "degenerate_schemes.py",
    } <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "quickstart OK" in out
    assert "linear.AG_z" in out


def test_degenerate_schemes():
    out = run_example("degenerate_schemes.py")
    assert "identical loss" in out
    assert "fsdp" in out and "megatron" in out


def test_choose_configuration():
    out = run_example("choose_configuration.py", "GPT-5B", "64", "perlmutter")
    assert "selected:" in out
    assert "batch time" in out


def test_weak_scaling_study_single_machine():
    out = run_example("weak_scaling_study.py", "perlmutter")
    assert "weak scaling on perlmutter" in out
    assert "peak sustained" in out


@pytest.mark.slow
def test_memorization_study():
    out = run_example("memorization_study.py", "1", timeout=900)
    assert "goldfish" in out
    assert "Figs. 10 and 11" in out


def test_pipeline_vs_4d():
    out = run_example("pipeline_vs_4d.py")
    assert "three routes, one computation" in out
    assert "bubble" in out


def test_moe_expert_parallelism():
    out = run_example("moe_expert_parallelism.py")
    assert "MoE expert parallelism OK" in out
    assert "moe.dispatch" in out


def test_full_training_run():
    out = run_example("full_training_run.py")
    assert "full training run OK" in out
