"""Tests for the nn library: layers, GPT reference model, optimizers."""

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.nn import (
    GPT,
    AdamW,
    Batcher,
    CosineSchedule,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    SGD,
    WarmupDecaySchedule,
    causal_attention,
    clip_grad_norm,
    pad_or_trim,
)
from repro.tensor import Tensor


def tiny_config(**kw) -> GPTConfig:
    defaults = dict(
        name="tiny",
        num_layers=2,
        hidden_size=16,
        num_heads=4,
        seq_len=12,
        vocab_size=29,
    )
    defaults.update(kw)
    return GPTConfig(**defaults)


class TestModuleSystem:
    def test_named_parameters_walk(self):
        class Net(Module):
            def __init__(self):
                self.fc = Linear(3, 4, rng=np.random.default_rng(0))
                self.layers = [LayerNorm(4), LayerNorm(4)]

        net = Net()
        names = {n for n, _ in net.named_parameters()}
        assert names == {
            "fc.weight", "fc.bias",
            "layers.0.weight", "layers.0.bias",
            "layers.1.weight", "layers.1.bias",
        }

    def test_num_parameters(self):
        fc = Linear(3, 4, rng=np.random.default_rng(0))
        assert fc.num_parameters() == 3 * 4 + 4

    def test_zero_grad(self):
        fc = Linear(2, 2, rng=np.random.default_rng(0))
        out = fc(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert fc.weight.grad is not None
        fc.zero_grad()
        assert fc.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = Linear(3, 3, rng=np.random.default_rng(0))
        b = Linear(3, 3, rng=np.random.default_rng(1))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_strictness(self):
        a = Linear(3, 3, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((3, 3))})  # missing bias

    def test_state_dict_shape_check(self):
        a = Linear(3, 3, rng=np.random.default_rng(0))
        sd = a.state_dict()
        sd["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            a.load_state_dict(sd)

    def test_parameter_requires_grad_always(self):
        from repro.tensor import no_grad

        with no_grad():
            p = Parameter(np.ones(3))
        assert p.requires_grad


class TestLayers:
    def test_linear_forward(self):
        fc = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((5, 3))
        out = fc(Tensor(x))
        np.testing.assert_allclose(
            out.data, x @ fc.weight.data + fc.bias.data, rtol=1e-12
        )

    def test_linear_no_bias(self):
        fc = Linear(3, 2, bias=False, rng=np.random.default_rng(0))
        assert fc.bias is None
        assert fc.num_parameters() == 6

    def test_embedding_bounds(self):
        emb = Embedding(5, 3, rng=np.random.default_rng(0))
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_layernorm_shapes(self):
        ln = LayerNorm(6)
        out = ln(Tensor(np.random.default_rng(0).standard_normal((2, 3, 6))))
        assert out.shape == (2, 3, 6)

    def test_dropout_eval_mode(self):
        d = Dropout(0.9, rng=np.random.default_rng(0))
        d.eval()
        x = Tensor(np.ones(10))
        assert d(x) is x
        d.train()
        assert (d(x).data == 0).any()


class TestAttention:
    def test_causality(self):
        """Changing a future token must not affect earlier outputs."""
        rng = np.random.default_rng(0)
        b, s, h, nh = 1, 6, 8, 2
        q = rng.standard_normal((b, s, h))
        k = rng.standard_normal((b, s, h))
        v = rng.standard_normal((b, s, h))
        base = causal_attention(Tensor(q), Tensor(k), Tensor(v), nh).data
        k2, v2 = k.copy(), v.copy()
        k2[0, -1] += 10.0
        v2[0, -1] -= 5.0
        pert = causal_attention(Tensor(q), Tensor(k2), Tensor(v2), nh).data
        np.testing.assert_allclose(base[0, :-1], pert[0, :-1], rtol=1e-12)
        assert not np.allclose(base[0, -1], pert[0, -1])

    def test_single_head_equals_manual(self):
        rng = np.random.default_rng(1)
        s, h = 4, 3
        q = rng.standard_normal((1, s, h))
        k = rng.standard_normal((1, s, h))
        v = rng.standard_normal((1, s, h))
        out = causal_attention(Tensor(q), Tensor(k), Tensor(v), 1).data[0]
        scores = q[0] @ k[0].T / np.sqrt(h)
        scores[~np.tril(np.ones((s, s), dtype=bool))] = -1e30
        e = np.exp(scores - scores.max(axis=-1, keepdims=True))
        att = e / e.sum(axis=-1, keepdims=True)
        np.testing.assert_allclose(out, att @ v[0], rtol=1e-10)


class TestGPT:
    def test_forward_shapes(self):
        cfg = tiny_config()
        model = GPT(cfg, seed=0)
        ids = np.random.default_rng(0).integers(0, cfg.vocab_size, (2, 8))
        logits = model(ids)
        assert logits.shape == (2, 8, cfg.vocab_size)

    def test_rejects_bad_shapes(self):
        model = GPT(tiny_config(), seed=0)
        with pytest.raises(ValueError):
            model(np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            model(np.zeros((1, 100), dtype=int))

    def test_loss_decreases_with_training(self):
        cfg = tiny_config()
        model = GPT(cfg, seed=0)
        ids = np.random.default_rng(3).integers(0, cfg.vocab_size, (4, 10))
        opt = AdamW(model.parameters(), lr=1e-2)
        first = None
        for _ in range(8):
            loss = model.loss(ids)
            if first is None:
                first = loss.item()
            model.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.8

    def test_checkpointing_matches_plain(self):
        cfg = tiny_config()
        ids = np.random.default_rng(5).integers(0, cfg.vocab_size, (2, 8))
        plain = GPT(cfg, seed=7, activation_checkpointing=False)
        ck = GPT(cfg, seed=7, activation_checkpointing=True)
        ck.load_state_dict(plain.state_dict())
        l1, l2 = plain.loss(ids), ck.loss(ids)
        assert l1.item() == pytest.approx(l2.item(), rel=1e-12)
        l1.backward()
        l2.backward()
        g1 = {n: p.grad for n, p in plain.named_parameters()}
        g2 = {n: p.grad for n, p in ck.named_parameters()}
        for n in g1:
            np.testing.assert_allclose(g1[n], g2[n], rtol=1e-9, atol=1e-12)

    def test_param_count_matches_formula(self):
        cfg = tiny_config()
        model = GPT(cfg, seed=0)
        assert model.num_parameters() == cfg.num_parameters()

    def test_tied_lm_head(self):
        """Embedding grads should include LM-head contributions."""
        cfg = tiny_config()
        model = GPT(cfg, seed=0)
        ids = np.random.default_rng(0).integers(0, cfg.vocab_size, (1, 6))
        model.loss(ids).backward()
        assert model.wte.weight.grad is not None
        assert np.abs(model.wte.weight.grad).sum() > 0

    def test_deterministic_given_seed(self):
        cfg = tiny_config()
        ids = np.random.default_rng(0).integers(0, cfg.vocab_size, (1, 6))
        a = GPT(cfg, seed=42).loss(ids).item()
        b = GPT(cfg, seed=42).loss(ids).item()
        assert a == b


class TestOptim:
    def test_sgd_step(self):
        p = Parameter(np.array([1.0, 2.0]))
        p.grad = np.array([0.5, -0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_sgd_momentum(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_adamw_first_step_is_lr_sized(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.3])
        AdamW([p], lr=0.01).step()
        # After bias correction, first update = lr * sign(g) (approx).
        np.testing.assert_allclose(p.data, [1.0 - 0.01], atol=1e-6)

    def test_adamw_weight_decay_decoupled(self):
        p = Parameter(np.array([2.0]))
        p.grad = np.array([0.0])
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.step()
        # zero grad => update is pure decay: p -= lr * wd * p
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_skips_gradless_params(self):
        p = Parameter(np.array([1.0]))
        AdamW([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_clip_grad_norm(self):
        p1 = Parameter(np.array([3.0]))
        p2 = Parameter(np.array([4.0]))
        p1.grad, p2.grad = np.array([3.0]), np.array([4.0])
        norm = clip_grad_norm([p1, p2], 1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(p1.grad[0] ** 2 + p2.grad[0] ** 2)
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_warmup_decay_schedule(self):
        sch = WarmupDecaySchedule(3e-4, 3e-5, warmup_steps=50, decay_steps=50)
        assert sch.lr_at(0) == pytest.approx(3e-4 / 50)
        assert sch.lr_at(49) == pytest.approx(3e-4)
        assert sch.lr_at(100) == pytest.approx(3e-5)
        assert sch.lr_at(1000) == pytest.approx(3e-5)
        assert 3e-5 < sch.lr_at(99) < 3e-4

    def test_cosine_schedule(self):
        sch = CosineSchedule(1.0, 0.1, warmup_steps=10, total_steps=110)
        assert sch.lr_at(9) == pytest.approx(1.0)
        assert sch.lr_at(110) == pytest.approx(0.1)
        mid = sch.lr_at(10 + 50)
        assert 0.1 < mid < 1.0

    def test_schedule_apply(self):
        p = Parameter(np.array([0.0]))
        opt = AdamW([p], lr=999.0)
        WarmupDecaySchedule().apply(opt, 49)
        assert opt.lr == pytest.approx(3e-4)

    def test_bad_schedules(self):
        with pytest.raises(ValueError):
            WarmupDecaySchedule(warmup_steps=0)
        with pytest.raises(ValueError):
            CosineSchedule(1.0, 0.1, warmup_steps=10, total_steps=10)


class TestData:
    def test_pad_or_trim(self):
        t = np.array([1, 2, 3])
        np.testing.assert_array_equal(pad_or_trim(t, 5, 0), [1, 2, 3, 0, 0])
        np.testing.assert_array_equal(pad_or_trim(t, 2, 0), [1, 2])

    def test_batcher_covers_all(self):
        seqs = [np.full(4, i) for i in range(10)]
        b = Batcher(seqs, batch_size=3, seed=0)
        seen = []
        for batch in b.epoch(0):
            seen.extend(batch[:, 0].tolist())
        assert sorted(seen) == list(range(10))
        assert b.num_batches() == 4

    def test_batcher_deterministic_per_epoch(self):
        seqs = [np.full(4, i) for i in range(10)]
        b = Batcher(seqs, batch_size=3, seed=1)
        e0a = [x[:, 0].tolist() for x in b.epoch(0)]
        e0b = [x[:, 0].tolist() for x in b.epoch(0)]
        e1 = [x[:, 0].tolist() for x in b.epoch(1)]
        assert e0a == e0b
        assert e0a != e1

    def test_batcher_drop_last(self):
        seqs = [np.zeros(2, dtype=int)] * 10
        b = Batcher(seqs, batch_size=3, seed=0, drop_last=True)
        assert b.num_batches() == 3
        assert sum(1 for _ in b.epoch(0)) == 3

    def test_batcher_validation(self):
        with pytest.raises(ValueError):
            Batcher([], batch_size=2)
        with pytest.raises(ValueError):
            Batcher([np.zeros(2), np.zeros(3)], batch_size=2)
