"""Cross-checks between independent parts of the library.

Each test here validates one component against another that was built
separately — the reproduction's internal consistency net.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPTConfig, get_model
from repro.core import Grid4D, GridConfig, ParallelGPT, enumerate_grid_configs
from repro.kernels import flops_per_iteration
from repro.nn import GPT
from repro.perfmodel import gpt_layer_shapes
from repro.tensor import to_bf16


class TestFlopsFormulaVsLayerShapes:
    """Narayanan's closed form vs summing our own layer inventory."""

    @pytest.mark.parametrize("name", ["GPT-5B", "GPT-80B", "GPT-320B"])
    def test_formula_matches_shape_sum(self, name):
        cfg = get_model(name)
        b = 8
        # Matmul flops from the layer inventory: forward 2mkn per layer,
        # x4 passes (forward, recompute, dI, dW) with checkpointing.
        fc = sum(l.flops for l in gpt_layer_shapes(cfg, b, include_head=False))
        head = 2.0 * b * cfg.seq_len * cfg.hidden_size * cfg.vocab_size
        # Attention core: QK^T and AV, each 2*B*s^2*h per layer.
        attn = cfg.num_layers * 2 * (2.0 * b * cfg.seq_len**2 * cfg.hidden_size)
        total = 4 * (fc + attn) + 4 * head
        formula = flops_per_iteration(cfg, b, checkpointing=True)
        # The closed form approximates the head term (V/(16lh)) and
        # drops small constants; agreement within 2%.
        assert total == pytest.approx(formula, rel=0.02)

    def test_attention_share_grows_with_seq(self):
        """The s/(6h) term: longer sequences raise flops per token."""
        cfg = get_model("GPT-5B")
        short = flops_per_iteration(cfg.scaled(seq_len=1024), 8) / 1024
        long = flops_per_iteration(cfg.scaled(seq_len=4096), 8) / 4096
        assert long > short


class TestGridProperties:
    @given(
        gx=st.integers(1, 4),
        gy=st.integers(1, 4),
        gz=st.integers(1, 3),
        gd=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_rank_coords_bijection(self, gx, gy, gz, gd):
        grid = Grid4D(GridConfig(gx, gy, gz, gd))
        seen = set()
        for coords in grid.iter_coords():
            r = grid.rank_of(*coords)
            assert grid.coords_of(r) == coords
            seen.add(r)
        assert seen == set(range(gx * gy * gz * gd))

    @given(
        gx=st.integers(1, 3),
        gy=st.integers(1, 3),
        gz=st.integers(1, 3),
        gd=st.integers(1, 2),
    )
    @settings(max_examples=30, deadline=None)
    def test_groups_partition_ranks(self, gx, gy, gz, gd):
        """For every axis, the groups tile all ranks exactly once."""
        grid = Grid4D(GridConfig(gx, gy, gz, gd))
        for axis in ("x", "y", "z", "data"):
            covered = []
            for g in grid.groups_along(axis):
                covered.extend(g.ranks)
            assert sorted(covered) == grid.all_ranks()

    def test_hierarchy_example_from_paper(self):
        """Section V-B's worked example: 8 GPUs, all dims 2 — X groups
        are (0,1)(2,3)(4,5)(6,7), Y groups (0,2)(1,3)(4,6)(5,7)."""
        grid = Grid4D(GridConfig(2, 2, 2, 1))
        xg = {g.ranks for g in grid.groups_along("x")}
        yg = {g.ranks for g in grid.groups_along("y")}
        assert xg == {(0, 1), (2, 3), (4, 5), (6, 7)}
        assert yg == {(0, 2), (1, 3), (4, 6), (5, 7)}

    @given(n=st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    @settings(max_examples=10, deadline=None)
    def test_enumeration_complete_and_exact(self, n):
        configs = enumerate_grid_configs(n)
        # Every config multiplies to n; no duplicates; pure-data and
        # pure-Z always present.
        assert all(c.total == n for c in configs)
        assert len({c.dims for c in configs}) == len(configs)
        assert GridConfig(1, 1, 1, n).dims in {c.dims for c in configs}
        assert GridConfig(1, 1, n, 1).dims in {c.dims for c in configs}

    def test_enumeration_nonpow2(self):
        configs = enumerate_grid_configs(12)
        assert all(c.total == 12 for c in configs)
        assert any(c.gy == 3 for c in configs)


class TestParallelGeneration:
    def test_greedy_decode_matches_serial(self):
        """Inference through the 4D model: identical greedy tokens."""
        cfg = GPTConfig(
            name="gen", num_layers=2, hidden_size=16, num_heads=4,
            seq_len=16, vocab_size=32,
        )
        serial = GPT(cfg, seed=1)
        par = ParallelGPT.from_serial(serial, Grid4D(GridConfig(2, 2, 1)))
        prefix = np.array([[3, 1, 4, 1, 5]])
        s_ids = prefix.copy()
        p_ids = prefix.copy()
        for _ in range(6):
            s_next = int(np.argmax(serial(s_ids).data[0, -1]))
            p_next = int(np.argmax(par(p_ids).data[0, -1]))
            assert s_next == p_next
            s_ids = np.concatenate([s_ids, [[s_next]]], axis=1)
            p_ids = np.concatenate([p_ids, [[p_next]]], axis=1)


class TestBF16Range:
    def test_bf16_shares_fp32_range(self):
        """Why the paper uses bf16 over fp16 (Section VI-A): values that
        overflow fp16 (max ~65504) survive bf16 rounding unharmed."""
        big = np.array([1e10, 3.0e38, -2.5e20], dtype=np.float32)
        out = to_bf16(big)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, big, rtol=0.01)
        # The same values are infinite in fp16.
        with np.errstate(over="ignore"):
            as_fp16 = big.astype(np.float16)
        assert not np.isfinite(as_fp16).all()

    def test_gradient_magnitudes_survive(self):
        """Typical tiny gradient magnitudes underflow fp16's 6e-5 normal
        range but not bf16's fp32-like exponent."""
        tiny = np.array([1e-20, 3e-30], dtype=np.float32)
        out = to_bf16(tiny)
        assert (out > 0).all()
        assert (tiny.astype(np.float16) == 0).all()
