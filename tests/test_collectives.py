"""Tests for the virtual runtime's ring collectives.

The collectives are the foundation the 4D algorithm's correctness rests
on, so they are verified exhaustively: against NumPy reference
reductions, for NCCL's replica-consistency invariant, and with
property-based tests over group sizes and shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    CommTracer,
    Handle,
    ProcessGroup,
    all_gather,
    all_reduce,
    broadcast,
    iall_gather,
    iall_reduce,
    ireduce_scatter,
    reduce_scatter,
)


def _buffers(group, shape, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return {r: rng.standard_normal(shape).astype(dtype) for r in group}


class TestProcessGroup:
    def test_group_rank(self):
        g = ProcessGroup((4, 2, 7))
        assert g.group_rank(2) == 1
        assert 7 in g and 3 not in g
        assert len(g) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ProcessGroup(())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            ProcessGroup((1, 1))

    def test_missing_rank(self):
        with pytest.raises(ValueError):
            ProcessGroup((0, 1)).group_rank(5)

    def test_rank_lookup_is_cached(self):
        """group_rank is an O(1) dict lookup, not tuple.index."""
        g = ProcessGroup(tuple(range(0, 64, 2)))
        assert g._pos == {r: i for i, r in enumerate(g.ranks)}
        for i, r in enumerate(g.ranks):
            assert g.group_rank(r) == i

    def test_cache_preserves_frozen_contract(self):
        """The cached lookup map is a non-field attribute: equality,
        hashing, repr, copies, and replace() behave as if it weren't
        there, and the dataclass stays frozen."""
        import copy
        import dataclasses

        a = ProcessGroup((3, 1, 4))
        b = ProcessGroup((3, 1, 4))
        assert a == b and hash(a) == hash(b)
        assert "_pos" not in repr(a)
        with pytest.raises(dataclasses.FrozenInstanceError):
            a.ranks = (0,)

        c = copy.deepcopy(a)
        assert c == a and c.group_rank(4) == 2
        d = dataclasses.replace(a, ranks=(5, 6))
        assert d.group_rank(6) == 1 and d._pos == {5: 0, 6: 1}


class TestAllReduce:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
    def test_matches_numpy_sum(self, size):
        g = ProcessGroup(tuple(range(size)))
        bufs = _buffers(g, (6, 5), seed=size)
        expect = np.sum([bufs[r] for r in g], axis=0)
        out = all_reduce(bufs, g)
        for r in g:
            np.testing.assert_allclose(out[r], expect, rtol=1e-12)

    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_all_ranks_identical(self, size):
        """NCCL invariant: all-reduce output is bit-identical everywhere."""
        g = ProcessGroup(tuple(range(size)))
        out = all_reduce(_buffers(g, (7, 3)), g)
        base = out[0]
        for r in g:
            assert np.array_equal(out[r], base)

    def test_max_op(self):
        g = ProcessGroup((0, 1, 2))
        bufs = _buffers(g, (4,))
        out = all_reduce(bufs, g, op="max")
        expect = np.max([bufs[r] for r in g], axis=0)
        np.testing.assert_array_equal(out[0], expect)

    def test_does_not_mutate_inputs(self):
        g = ProcessGroup((0, 1))
        bufs = _buffers(g, (4, 4))
        copies = {r: bufs[r].copy() for r in g}
        all_reduce(bufs, g)
        for r in g:
            np.testing.assert_array_equal(bufs[r], copies[r])

    def test_non_divisible_length_padded(self):
        g = ProcessGroup((0, 1, 2))
        bufs = _buffers(g, (7,))  # 7 not divisible by 3
        out = all_reduce(bufs, g)
        expect = np.sum([bufs[r] for r in g], axis=0)
        np.testing.assert_allclose(out[1], expect, rtol=1e-12)

    def test_mismatched_shapes_rejected(self):
        g = ProcessGroup((0, 1))
        bufs = {0: np.zeros(3), 1: np.zeros(4)}
        with pytest.raises(ValueError):
            all_reduce(bufs, g)

    def test_wrong_keys_rejected(self):
        g = ProcessGroup((0, 1))
        with pytest.raises(ValueError):
            all_reduce({0: np.zeros(3), 2: np.zeros(3)}, g)


class TestReduceScatter:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 6])
    def test_matches_reference(self, size):
        g = ProcessGroup(tuple(range(size)))
        bufs = _buffers(g, (size * 3, 4), seed=7)
        total = np.sum([bufs[r] for r in g], axis=0)
        out = reduce_scatter(bufs, g)
        for pos, r in enumerate(g):
            np.testing.assert_allclose(
                out[r], total[pos * 3 : (pos + 1) * 3], rtol=1e-12
            )

    def test_nondivisible_rejected(self):
        g = ProcessGroup((0, 1, 2))
        with pytest.raises(ValueError):
            reduce_scatter(_buffers(g, (7, 2)), g)

    def test_group_order_determines_shards(self):
        """Shard ownership follows group position, not global rank."""
        g = ProcessGroup((5, 3))
        bufs = {5: np.arange(4.0), 3: np.arange(4.0) * 10}
        out = reduce_scatter(bufs, g)
        total = bufs[5] + bufs[3]
        np.testing.assert_array_equal(out[5], total[:2])  # position 0
        np.testing.assert_array_equal(out[3], total[2:])  # position 1


class TestAllGather:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
    def test_concatenates_in_group_order(self, size):
        g = ProcessGroup(tuple(range(size)))
        bufs = _buffers(g, (2, 3), seed=11)
        expect = np.concatenate([bufs[r] for r in g], axis=0)
        out = all_gather(bufs, g)
        for r in g:
            np.testing.assert_array_equal(out[r], expect)

    def test_inverse_of_reduce_scatter(self):
        """reduce-scatter then all-gather == all-reduce."""
        g = ProcessGroup((0, 1, 2, 3))
        bufs = _buffers(g, (8, 2), seed=3)
        rs = reduce_scatter(bufs, g)
        ag = all_gather(rs, g)
        ar = all_reduce(bufs, g)
        for r in g:
            np.testing.assert_allclose(ag[r], ar[r], rtol=1e-12)


class TestBroadcast:
    def test_broadcast_from_root(self):
        g = ProcessGroup((0, 1, 2))
        bufs = _buffers(g, (3,))
        out = broadcast(bufs, g, root=1)
        for r in g:
            np.testing.assert_array_equal(out[r], bufs[1])

    def test_root_must_be_member(self):
        g = ProcessGroup((0, 1))
        with pytest.raises(ValueError):
            broadcast(_buffers(g, (2,)), g, root=9)


class TestNonBlocking:
    def test_handle_semantics(self):
        g = ProcessGroup((0, 1))
        bufs = _buffers(g, (4,))
        h = iall_reduce(bufs, g)
        assert isinstance(h, Handle)
        assert not h.completed
        out = h.wait()
        assert h.completed
        expect = bufs[0] + bufs[1]
        np.testing.assert_allclose(out[0], expect, rtol=1e-12)

    def test_double_wait_rejected(self):
        g = ProcessGroup((0, 1))
        h = iall_gather(_buffers(g, (2,)), g)
        h.wait()
        with pytest.raises(RuntimeError):
            h.wait()

    def test_ireduce_scatter(self):
        g = ProcessGroup((0, 1))
        bufs = _buffers(g, (4,))
        out = ireduce_scatter(bufs, g).wait()
        total = bufs[0] + bufs[1]
        np.testing.assert_allclose(out[0], total[:2], rtol=1e-12)


class TestTracer:
    def test_records_ops_and_bytes(self):
        g = ProcessGroup((0, 1))
        tr = CommTracer()
        bufs = _buffers(g, (8,))
        all_reduce(bufs, g, tracer=tr, tag="grad")
        all_gather(bufs, g, tracer=tr)
        assert tr.ops() == ["all_reduce", "all_gather"]
        assert tr.total_bytes("all_reduce") == 8 * 8
        assert len(tr.by_tag("grad")) == 1
        tr.clear()
        assert tr.records == []

    def test_disabled_tracer(self):
        g = ProcessGroup((0, 1))
        tr = CommTracer(enabled=False)
        all_reduce(_buffers(g, (2,)), g, tracer=tr)
        assert tr.records == []


class TestProperties:
    """Property-based checks over group size, shape, and seed."""

    @given(
        size=st.integers(1, 6),
        rows=st.integers(1, 4),
        cols=st.integers(1, 4),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_reduce_is_sum(self, size, rows, cols, seed):
        g = ProcessGroup(tuple(range(size)))
        bufs = _buffers(g, (rows, cols), seed=seed)
        out = all_reduce(bufs, g)
        expect = np.sum([bufs[r] for r in g], axis=0)
        for r in g:
            np.testing.assert_allclose(out[r], expect, rtol=1e-10, atol=1e-10)

    @given(size=st.integers(1, 6), chunk=st.integers(1, 5), seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_gather_scatter_roundtrip(self, size, chunk, seed):
        """all-gather of reduce-scatter shards equals the full reduction."""
        g = ProcessGroup(tuple(range(size)))
        bufs = _buffers(g, (size * chunk,), seed=seed)
        full = np.sum([bufs[r] for r in g], axis=0)
        out = all_gather(reduce_scatter(bufs, g), g)
        for r in g:
            np.testing.assert_allclose(out[r], full, rtol=1e-10, atol=1e-10)


class TestPointToPointAndRooted:
    def test_send_recv(self):
        from repro.runtime import send_recv

        tr = CommTracer()
        buf = np.arange(6.0)
        out = send_recv(buf, src=0, dst=3, tracer=tr, tag="act")
        np.testing.assert_array_equal(out, buf)
        assert out is not buf  # the destination owns a copy
        assert tr.records[0].op == "p2p"
        assert tr.records[0].bytes_per_rank == 48

    def test_send_recv_self_transfer(self):
        """src == dst is a traced no-op copy (degree-1 rings compose)."""
        from repro.runtime import send_recv
        from repro.runtime.validate import assert_valid_schedule

        tr = CommTracer()
        buf = np.arange(6.0)
        out = send_recv(buf, src=1, dst=1, tracer=tr, tag="ring")
        np.testing.assert_array_equal(out, buf)
        assert out is not buf  # still a fresh copy, like any recv
        assert tr.records[0].op == "p2p"
        assert tr.records[0].group.ranks == (1,)
        # Both the send and the recv event land on rank 1 and pair up
        # over the (1, 1) channel — the validator sees a clean schedule.
        assert [e.op for e in tr.events] == ["send", "recv"]
        assert {e.rank for e in tr.events} == {1}
        assert_valid_schedule(tr)

    def test_scatter_gather_roundtrip(self):
        from repro.runtime import gather, scatter

        g = ProcessGroup((0, 1, 2))
        chunks = [np.full(i + 1, float(i)) for i in range(3)]
        scattered = scatter(chunks, g, root=0)
        for i, r in enumerate(g.ranks):
            np.testing.assert_array_equal(scattered[r], chunks[i])
        back = gather(scattered, g, root=0)
        for a, b in zip(back, chunks):
            np.testing.assert_array_equal(a, b)

    def test_scatter_validation(self):
        from repro.runtime import scatter

        g = ProcessGroup((0, 1))
        with pytest.raises(ValueError):
            scatter([np.zeros(1)], g, root=0)  # wrong chunk count
        with pytest.raises(ValueError):
            scatter([np.zeros(1), np.zeros(1)], g, root=9)

    def test_gather_validation(self):
        from repro.runtime import gather

        g = ProcessGroup((0, 1))
        with pytest.raises(ValueError):
            gather({0: np.zeros(1)}, g, root=0)  # missing rank 1
        with pytest.raises(ValueError):
            gather({0: np.zeros(1), 1: np.zeros(1)}, g, root=5)

    def test_traced_ops(self):
        from repro.runtime import gather, scatter

        g = ProcessGroup((0, 1))
        tr = CommTracer()
        scattered = scatter([np.zeros(2), np.zeros(2)], g, 0, tracer=tr)
        gather(scattered, g, 0, tracer=tr)
        assert tr.ops() == ["scatter", "gather"]
