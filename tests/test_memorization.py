"""Tests for the memorization laboratory (Sections VIII-B/C/D)."""

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.memorization import (
    BucketDesign,
    ExperimentConfig,
    SyntheticCorpus,
    evaluate_buckets,
    exact_match_rate,
    goldfish_mask,
    greedy_continuation,
    pretrain,
    run_experiment,
    scale_ladder,
)
from repro.nn import GPT


class TestCorpus:
    def test_documents_deterministic(self):
        c = SyntheticCorpus(128, 32, seed=5)
        a = c.document(7)
        b = c.document(7)
        np.testing.assert_array_equal(a.tokens, b.tokens)
        assert a.doc_id == 7

    def test_documents_distinct(self):
        c = SyntheticCorpus(128, 32, seed=0)
        docs = c.documents(0, 20)
        for i in range(len(docs)):
            for j in range(i + 1, len(docs)):
                assert not np.array_equal(docs[i].tokens, docs[j].tokens)

    def test_tokens_in_vocab(self):
        c = SyntheticCorpus(64, 40, seed=1)
        t = c.document(3).tokens
        assert t.min() >= 0 and t.max() < 64
        assert len(t) == 40

    def test_bigram_structure_learnable(self):
        """Consecutive tokens must follow the shared successor table."""
        c = SyntheticCorpus(128, 64, seed=2)
        t = c.document(0).tokens
        for i in range(len(t) - 1):
            assert t[i + 1] in c._successors[t[i]]

    def test_background_disjoint_from_buckets(self):
        c = SyntheticCorpus(128, 32, seed=0)
        rng = np.random.default_rng(0)
        bg = c.background_batch(4, rng)
        assert bg.shape == (4, 32)
        docs = {tuple(d.tokens) for d in c.documents(0, 32)}
        for row in bg:
            assert tuple(row) not in docs

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(4, 32, branching=8)
        with pytest.raises(ValueError):
            SyntheticCorpus(128, 4)
        with pytest.raises(ValueError):
            SyntheticCorpus(128, 32).document(-1)


class TestBuckets:
    def test_four_disjoint_buckets(self):
        design = BucketDesign(SyntheticCorpus(128, 32), docs_per_bucket=5)
        assert len(design.buckets) == 4
        assert design.no_overlap()
        assert [b.epochs for b in design.buckets] == [1, 4, 6, 0]

    def test_control_bucket(self):
        design = BucketDesign(SyntheticCorpus(128, 32), docs_per_bucket=3)
        assert design.control_bucket().epochs == 0
        assert len(design.trained_buckets()) == 3

    def test_injection_stream_counts(self):
        """Each trained document appears exactly `epochs` times."""
        design = BucketDesign(SyntheticCorpus(128, 32), docs_per_bucket=4)
        stream = design.injection_stream(seed=0)
        assert len(stream) == 4 * (1 + 4 + 6)
        for bucket in design.trained_buckets():
            for doc in bucket.documents:
                hits = sum(
                    np.array_equal(row, doc.tokens) for row in stream
                )
                assert hits == bucket.epochs
        # Control docs never appear.
        for doc in design.control_bucket().documents:
            assert not any(np.array_equal(r, doc.tokens) for r in stream)

    def test_stream_shuffle_deterministic(self):
        design = BucketDesign(SyntheticCorpus(128, 32), docs_per_bucket=4)
        np.testing.assert_array_equal(
            design.injection_stream(seed=1), design.injection_stream(seed=1)
        )
        assert not np.array_equal(
            design.injection_stream(seed=1), design.injection_stream(seed=2)
        )

    def test_requires_control(self):
        with pytest.raises(ValueError):
            BucketDesign(
                SyntheticCorpus(128, 32), 4, epochs_schedule=(1, 4, 6)
            )


class TestGoldfishMask:
    def test_drop_rate_about_one_in_k(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 1000, (8, 256))
        mask = goldfish_mask(ids, k=2, h=13)
        dropped = 1.0 - mask[:, 13:].mean()
        assert 0.4 < dropped < 0.6

    def test_k4_drops_quarter(self):
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 1000, (8, 256))
        mask = goldfish_mask(ids, k=4, h=13)
        dropped = 1.0 - mask[:, 13:].mean()
        assert 0.15 < dropped < 0.35

    def test_first_h_tokens_kept(self):
        ids = np.random.default_rng(2).integers(0, 50, (3, 40))
        mask = goldfish_mask(ids, h=13)
        assert (mask[:, :13] == 1.0).all()

    def test_same_passage_same_mask(self):
        """The defining property: a repeated passage always drops the
        same tokens, so repetition can never reveal them."""
        doc = np.random.default_rng(3).integers(0, 500, 64)
        m1 = goldfish_mask(doc[None, :])
        m2 = goldfish_mask(np.stack([doc, doc]))
        np.testing.assert_array_equal(m1[0], m2[0])
        np.testing.assert_array_equal(m2[0], m2[1])

    def test_different_passages_different_masks(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 500, (1, 128))
        b = rng.integers(0, 500, (1, 128))
        assert not np.array_equal(goldfish_mask(a), goldfish_mask(b))

    def test_context_locality(self):
        """The mask at a position depends only on the h preceding
        tokens: changing a token far *after* position t leaves the mask
        at t unchanged."""
        rng = np.random.default_rng(5)
        a = rng.integers(0, 500, (1, 64))
        b = a.copy()
        b[0, 50] = (b[0, 50] + 1) % 500
        ma, mb = goldfish_mask(a), goldfish_mask(b)
        np.testing.assert_array_equal(ma[0, :50], mb[0, :50])

    def test_validation(self):
        ids = np.zeros((2, 8), dtype=int)
        with pytest.raises(ValueError):
            goldfish_mask(ids, k=1)
        with pytest.raises(ValueError):
            goldfish_mask(ids, h=0)
        with pytest.raises(ValueError):
            goldfish_mask(np.zeros(8, dtype=int))


def tiny_model(width=32, seq=32, vocab=128, layers=2, heads=4, name="m"):
    return GPT(
        GPTConfig(
            name=name, num_layers=layers, hidden_size=width,
            num_heads=heads, seq_len=seq, vocab_size=vocab,
        ),
        seed=0,
    )


class TestEvaluate:
    def test_greedy_continuation_deterministic(self):
        model = tiny_model()
        prefix = np.arange(10)
        a = greedy_continuation(model, prefix, 5)
        b = greedy_continuation(model, prefix, 5)
        np.testing.assert_array_equal(a, b)
        assert len(a) == 5

    def test_untrained_model_matches_nothing(self):
        model = tiny_model()
        corpus = SyntheticCorpus(128, 32, seed=0)
        docs = np.stack([corpus.document(i).tokens for i in range(6)])
        assert exact_match_rate(model, docs, suffix_len=8) == 0.0

    def test_overfit_model_matches_everything(self):
        """A model trained to death on two documents reproduces them."""
        from repro.nn import AdamW

        model = tiny_model(width=64)
        corpus = SyntheticCorpus(128, 32, seed=0, branching=4)
        docs = np.stack([corpus.document(i).tokens for i in range(2)])
        opt = AdamW(model.parameters(), lr=1e-2)
        for _ in range(60):
            loss = model.loss(docs)
            model.zero_grad()
            loss.backward()
            opt.step()
        assert exact_match_rate(model, docs, suffix_len=8) == 1.0

    def test_suffix_validation(self):
        model = tiny_model()
        docs = np.zeros((2, 16), dtype=int)
        with pytest.raises(ValueError):
            exact_match_rate(model, docs, suffix_len=16)
        with pytest.raises(ValueError):
            exact_match_rate(model, docs, suffix_len=0)

    def test_evaluate_buckets_keys(self):
        model = tiny_model()
        design = BucketDesign(
            SyntheticCorpus(128, 32, seed=0), docs_per_bucket=2
        )
        rates = evaluate_buckets(model, design.buckets, suffix_len=8)
        assert set(rates) == {0, 1, 4, 6}
        assert all(0.0 <= v <= 1.0 for v in rates.values())


class TestScaleLadder:
    def test_monotone_capacity(self):
        ladder = scale_ladder()
        params = [c.num_parameters() for c in ladder]
        assert params == sorted(params)
        assert len(ladder) == 4

    def test_configs_are_valid(self):
        for cfg in scale_ladder():
            assert cfg.hidden_size % cfg.num_heads == 0


class TestExperiment:
    def test_seq_len_validation(self):
        cfg = GPTConfig(
            name="short", num_layers=1, hidden_size=16, num_heads=2,
            seq_len=16, vocab_size=128,
        )
        with pytest.raises(ValueError):
            run_experiment(cfg, ExperimentConfig(doc_len=32))

    def test_pretrained_config_mismatch(self):
        cfgs = scale_ladder()
        other = GPT(cfgs[1], seed=0)
        with pytest.raises(ValueError):
            run_experiment(cfgs[0], ExperimentConfig(), pretrained=other)

    def test_pretrain_reduces_loss(self):
        model = tiny_model(width=32)
        corpus = SyntheticCorpus(128, 32, seed=0, branching=4)
        losses = pretrain(model, corpus, steps=40, batch_size=8, lr=3e-3)
        assert losses[-1] < losses[0] * 0.8

    def test_experiment_structure_and_determinism(self):
        exp = ExperimentConfig(
            docs_per_bucket=2, pretrain_steps=20, warmup_steps=2, seed=7
        )
        cfg = scale_ladder()[0]
        a = run_experiment(cfg, exp)
        b = run_experiment(cfg, exp)
        assert a.exact_match == b.exact_match
        assert set(a.exact_match) == {0, 1, 4, 6}
        assert a.model_name == cfg.name
        assert not a.goldfish
        # 2 warmup steps + ceil(2 docs x (1+4+6) epochs / batch 2) = 13.
        assert len(a.losses) == 13

    @pytest.mark.slow
    def test_memorization_emerges_and_goldfish_suppresses(self):
        """The Figs. 10-11 claims at test scale: (a) repetition increases
        memorization; (b) larger capacity memorizes more; (c) the control
        bucket stays at zero; (d) Goldfish pushes memorization back to
        control levels."""
        exp = ExperimentConfig()
        tiny, small = scale_ladder()[0], scale_ladder()[1]
        r_tiny = run_experiment(tiny, exp)
        r_small = run_experiment(small, exp)
        # (a) more epochs -> no less memorization, and 6-epoch is positive
        # for the bigger model.
        assert r_small.exact_match[6] >= r_small.exact_match[1]
        assert r_small.exact_match[6] > 0
        # (b) capacity helps at 6 epochs.
        assert r_small.exact_match[6] >= r_tiny.exact_match[6]
        # (c) control stays zero.
        assert r_tiny.exact_match[0] == 0.0
        assert r_small.exact_match[0] == 0.0
        # (d) goldfish suppresses to control level.
        g_small = run_experiment(small, exp, goldfish=True)
        assert g_small.exact_match[6] <= max(
            g_small.exact_match[0], r_small.exact_match[6] / 2
        )


class TestParallelHarness:
    def test_experiment_through_parallel_model_matches_serial(self):
        """The paper runs this study through AxoNN-parallelized models
        (8-way Z-tensor parallelism); our 4D model must produce the
        exact same memorization outcomes as the serial run."""
        from repro.core import Grid4D, GridConfig

        exp = ExperimentConfig(
            docs_per_bucket=2, pretrain_steps=30, warmup_steps=2, seed=11
        )
        cfg = scale_ladder()[0]
        serial = run_experiment(cfg, exp)
        parallel = run_experiment(
            cfg, exp, grid=Grid4D(GridConfig(1, 1, 2, 1))
        )
        assert parallel.exact_match == serial.exact_match
        np.testing.assert_allclose(
            parallel.losses, serial.losses, rtol=1e-8
        )

    def test_parallel_goldfish_arm(self):
        from repro.core import Grid4D, GridConfig

        exp = ExperimentConfig(
            docs_per_bucket=2, pretrain_steps=20, warmup_steps=2, seed=12
        )
        cfg = scale_ladder()[0]
        r = run_experiment(
            cfg, exp, goldfish=True, grid=Grid4D(GridConfig(2, 1, 1, 1))
        )
        assert set(r.exact_match) == {0, 1, 4, 6}


class TestPrefixSensitivity:
    def test_memorized_doc_extracts_more_with_longer_prompts(self):
        """Extraction-attack shape: a model overfit on a document
        reproduces its suffix from long prompts; short prompts give less
        of the memorized context."""
        from repro.memorization import prefix_sensitivity
        from repro.nn import AdamW

        model = tiny_model(width=64)
        corpus = SyntheticCorpus(128, 32, seed=0, branching=4)
        docs = np.stack([corpus.document(i).tokens for i in range(2)])
        opt = AdamW(model.parameters(), lr=1e-2)
        for _ in range(60):
            loss = model.loss(docs)
            model.zero_grad()
            loss.backward()
            opt.step()
        rates = prefix_sensitivity(model, docs, suffix_len=8, prefix_lens=[2, 8, 24])
        assert rates[24] == 1.0  # full-context extraction succeeds
        assert rates[2] <= rates[8] <= rates[24]

    def test_untrained_model_extracts_nothing(self):
        from repro.memorization import prefix_sensitivity

        model = tiny_model()
        corpus = SyntheticCorpus(128, 32, seed=1)
        docs = np.stack([corpus.document(i).tokens for i in range(4)])
        rates = prefix_sensitivity(model, docs, suffix_len=8, prefix_lens=[4, 16])
        assert all(v == 0.0 for v in rates.values())

    def test_validation(self):
        from repro.memorization import prefix_sensitivity

        model = tiny_model()
        docs = np.zeros((1, 16), dtype=int)
        with pytest.raises(ValueError):
            prefix_sensitivity(model, docs, suffix_len=16, prefix_lens=[2])
        with pytest.raises(ValueError):
            prefix_sensitivity(model, docs, suffix_len=8, prefix_lens=[16])
