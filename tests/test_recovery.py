"""Checkpoint-restart recovery: the kill/restart round-trip.

The tentpole property: a training run interrupted by an injected rank
failure, recovered from its last checkpoint on a re-formed grid, must
finish with *bitwise-identical* losses to an uninterrupted run — and
the replayed segment's communication schedule must be structurally
identical to the uninterrupted run's schedule for the same steps
(golden-schedule comparison via ``repro.runtime.validate``).
"""

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.core import Grid4D, GridConfig, ParallelGPT
from repro.nn import (
    GPT,
    AdamW,
    MixedPrecisionTrainer,
    RecoveryReport,
    train_with_recovery,
)
from repro.runtime import (
    CommTracer,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RankFailure,
    normalized_schedule,
    schedule_diff,
    validate_schedule,
)


def tiny_cfg():
    return GPTConfig(
        name="rec", num_layers=2, hidden_size=16, num_heads=4,
        seq_len=10, vocab_size=32,
    )


def make_batches(cfg, n=6, batch=2, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, cfg.vocab_size, (batch, 8)) for _ in range(n)]


def parallel_factory(cfg, tracers=None):
    def factory():
        tracer = None
        if tracers is not None:
            tracer = CommTracer()
            tracers.append(tracer)
        grid = Grid4D(GridConfig(1, 2, 2), tracer=tracer)
        model = ParallelGPT(grid, cfg, seed=0)
        opt = AdamW(model.parameters(), lr=1e-3)
        return MixedPrecisionTrainer(model, opt)

    return factory


class TestRecoveryRoundTrip:
    def test_kill_restart_resumes_bitwise_identical(self, tmp_path):
        """Kill rank 1 at step 3; the recovered run's losses equal the
        uninterrupted run's, float for float."""
        cfg = tiny_cfg()
        batches = make_batches(cfg)
        factory = parallel_factory(cfg)

        ref = train_with_recovery(
            factory, batches, tmp_path / "ref.npz", checkpoint_interval=2
        )
        assert ref.restarts == 0
        assert len(ref.losses) == len(batches)

        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=1, step=3),)))
        rec = train_with_recovery(
            factory,
            batches,
            tmp_path / "rec.npz",
            checkpoint_interval=2,
            injector=inj,
        )
        assert inj.stats["kills"] == 1
        assert rec.restarts == 1
        assert rec.resumed_from == [2]
        assert rec.steps_lost == 1  # step 2 was checkpointed, step 3 died
        assert rec.losses == ref.losses  # bitwise: same floats, no approx

    def test_kill_at_first_step_recovers_from_step0_checkpoint(self, tmp_path):
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=3)
        factory = parallel_factory(cfg)
        ref = train_with_recovery(
            factory, batches, tmp_path / "ref.npz", checkpoint_interval=1
        )
        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=0, step=0),)))
        rec = train_with_recovery(
            factory,
            batches,
            tmp_path / "rec.npz",
            checkpoint_interval=1,
            injector=inj,
        )
        assert rec.restarts == 1
        assert rec.resumed_from == [0]
        assert rec.losses == ref.losses

    def test_multiple_kills_multiple_restarts(self, tmp_path):
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=5)
        factory = parallel_factory(cfg)
        ref = train_with_recovery(
            factory, batches, tmp_path / "ref.npz", checkpoint_interval=1
        )
        inj = FaultInjector(
            FaultPlan(
                (
                    FaultSpec("kill", rank=1, step=1),
                    FaultSpec("kill", rank=3, step=3),
                )
            )
        )
        rec = train_with_recovery(
            factory,
            batches,
            tmp_path / "rec.npz",
            checkpoint_interval=1,
            injector=inj,
        )
        assert rec.restarts == 2
        assert rec.losses == ref.losses

    def test_max_restarts_exhausted_propagates(self, tmp_path):
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=4)
        factory = parallel_factory(cfg)
        inj = FaultInjector(
            FaultPlan(
                tuple(FaultSpec("kill", rank=r, step=1) for r in range(3))
            )
        )
        with pytest.raises(RankFailure):
            train_with_recovery(
                factory,
                batches,
                tmp_path / "rec.npz",
                injector=inj,
                max_restarts=1,
            )

    def test_fault_without_injector_propagates(self, tmp_path):
        """No injector, no recovery: a FaultError from an ambient scope
        must not be swallowed (train_with_recovery only catches what its
        own injector caused)."""
        cfg = tiny_cfg()
        factory = parallel_factory(cfg)
        # Sanity: plain run works.
        report = train_with_recovery(
            factory, make_batches(cfg, n=1), tmp_path / "a.npz"
        )
        assert isinstance(report, RecoveryReport)

    def test_serial_model_also_recovers(self, tmp_path):
        """The recovery loop is substrate-agnostic: a serial GPT + AdamW
        recovers the same way (faults can only come from the injector's
        step clock here, so run fault-free and compare determinism)."""
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=3)

        def factory():
            model = GPT(cfg, seed=0)
            return MixedPrecisionTrainer(model, AdamW(model.parameters(), lr=1e-3))

        a = train_with_recovery(factory, batches, tmp_path / "a.npz")
        b = train_with_recovery(factory, batches, tmp_path / "b.npz")
        assert a.losses == b.losses

    def test_validates_checkpoint_interval(self, tmp_path):
        cfg = tiny_cfg()
        with pytest.raises(ValueError):
            train_with_recovery(
                parallel_factory(cfg),
                make_batches(cfg, n=1),
                tmp_path / "x.npz",
                checkpoint_interval=0,
            )


class TestReplayedScheduleMatchesGolden:
    def test_replayed_segment_schedule_identical(self, tmp_path):
        """The post-restart trainer's communication schedule for the
        replayed steps must match the uninterrupted run's schedule for
        those same steps — same collectives, same order, same groups,
        per rank (schedule_diff must be empty)."""
        cfg = tiny_cfg()
        batches = make_batches(cfg)

        # Uninterrupted reference, stepped manually so we can mark the
        # event-stream position at the resume boundary (step 2).
        ref_tracers: list[CommTracer] = []
        ref_factory = parallel_factory(cfg, tracers=ref_tracers)
        trainer = ref_factory()
        setup_events = len(ref_tracers[0].events)
        for step, ids in enumerate(batches):
            trainer.step(ids)
            if step == 1:  # steps 0..1 done; next events replay from here
                mark = len(ref_tracers[0].events)
        ref_segment = ref_tracers[0].events[mark:]

        # Recovered run: kill at step 3, checkpoint every 2 -> resume at 2.
        rec_tracers: list[CommTracer] = []
        inj = FaultInjector(FaultPlan((FaultSpec("kill", rank=1, step=3),)))
        train_with_recovery(
            parallel_factory(cfg, tracers=rec_tracers),
            batches,
            tmp_path / "rec.npz",
            checkpoint_interval=2,
            injector=inj,
        )
        assert len(rec_tracers) == 2  # initial trainer + post-restart trainer
        replay = rec_tracers[1].events
        # Drop model-construction events (identical per factory call) and
        # the aborted step-3 attempt cut short by the kill: align on the
        # reference segment's own prefix instead.
        assert len(replay) - len(ref_segment) == setup_events
        replay_segment = replay[setup_events:]

        golden = normalized_schedule(ref_segment)
        current = normalized_schedule(replay_segment)
        assert schedule_diff(golden, current) == "schedules identical"
        assert golden == current

        # And the replayed segment is a *valid* schedule in its own right.
        assert validate_schedule(replay_segment) == []


class TestRecoveryReportAccounting:
    def test_final_checkpoint_written_on_ragged_end(self, tmp_path):
        """A run of 5 steps with interval 2 must still persist steps 4-5:
        the loop writes a final checkpoint when it ends off-interval, so
        a later resume sees the finished state, not step 4's."""
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=5)
        factory = parallel_factory(cfg)
        path = tmp_path / "state.npz"
        report = train_with_recovery(
            factory, batches, path, checkpoint_interval=2
        )
        # step0 + steps 2, 4 + the ragged final at 5.
        assert report.checkpoint_saves == 4

        from repro.core import load_training_state

        trainer = factory()
        load_training_state(trainer.model, trainer.optimizer, path)
        assert trainer.optimizer.t == 5  # the checkpoint holds the final step

    def test_no_extra_checkpoint_when_end_is_on_interval(self, tmp_path):
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=4)
        report = train_with_recovery(
            parallel_factory(cfg), batches, tmp_path / "s.npz",
            checkpoint_interval=2,
        )
        assert report.checkpoint_saves == 3  # steps 0, 2, 4 — no ragged tail

    def test_restart_causes_counted_by_kind(self, tmp_path):
        """Kills and torn checkpoint writes are distinct causes in the
        report — the breakdown the goodput analysis needs."""
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=6)
        factory = parallel_factory(cfg)
        ref = train_with_recovery(
            factory, batches, tmp_path / "ref.npz", checkpoint_interval=1
        )
        inj = FaultInjector(
            FaultPlan(
                (
                    FaultSpec("kill", rank=1, step=2),
                    # Saves: step0=0, steps 1..  -> save index 4 is the
                    # post-step-4 write (after the kill's restart).
                    FaultSpec("torn_write", match=4),
                )
            )
        )
        rec = train_with_recovery(
            factory,
            batches,
            tmp_path / "rec.npz",
            checkpoint_interval=1,
            injector=inj,
        )
        assert rec.restart_causes["kill"] == 1
        assert rec.restart_causes["corruption"] == 1
        assert rec.restarts == 2
        assert rec.losses == ref.losses  # torn write rolled back cleanly

    def test_torn_write_rolls_back_to_previous_checkpoint(self, tmp_path):
        """The atomic protocol means a torn write leaves the previous
        checkpoint intact; the loop recovers from it instead of dying."""
        cfg = tiny_cfg()
        batches = make_batches(cfg, n=4)
        factory = parallel_factory(cfg)
        ref = train_with_recovery(
            factory, batches, tmp_path / "ref.npz", checkpoint_interval=1
        )
        inj = FaultInjector(FaultPlan((FaultSpec("torn_write", match=2),)))
        rec = train_with_recovery(
            factory,
            batches,
            tmp_path / "rec.npz",
            checkpoint_interval=1,
            injector=inj,
        )
        assert rec.restarts == 1
        assert rec.restart_causes == {"corruption": 1}
        assert rec.losses == ref.losses
