"""Tests for the hardware substrate: machines, placement, rings, sharing."""

import pytest

from repro.cluster import (
    ALPS,
    FRONTIER,
    MACHINES,
    PERLMUTTER,
    Placement,
    Ring,
    build_ring,
    get_machine,
    inter_node_edges,
    ring_bottleneck_bandwidth,
    shared_ring_bandwidths,
)


class TestMachineSpecs:
    def test_registry(self):
        assert set(MACHINES) == {"perlmutter", "frontier", "alps"}
        assert get_machine("Frontier") is FRONTIER

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            get_machine("summit")

    def test_paper_peak_numbers(self):
        # Section VI-C: advertised vs empirical peaks.
        assert PERLMUTTER.gpu.peak_bf16_flops == 312e12
        assert PERLMUTTER.gpu.empirical_bf16_flops == 280e12
        assert FRONTIER.gpu.peak_bf16_flops == 191.5e12
        assert FRONTIER.gpu.empirical_bf16_flops == 125e12
        assert ALPS.gpu.peak_bf16_flops == 989e12
        assert ALPS.gpu.empirical_bf16_flops == 813e12

    def test_gemm_efficiency_matches_paper(self):
        assert PERLMUTTER.gpu.gemm_efficiency == pytest.approx(0.90, abs=0.01)
        assert FRONTIER.gpu.gemm_efficiency == pytest.approx(0.65, abs=0.01)
        assert ALPS.gpu.gemm_efficiency == pytest.approx(0.82, abs=0.01)

    def test_devices_per_node(self):
        assert PERLMUTTER.gpus_per_node == 4
        assert FRONTIER.gpus_per_node == 8  # 4 MI250X x 2 GCDs
        assert ALPS.gpus_per_node == 4

    def test_num_nodes(self):
        assert FRONTIER.num_nodes(32768) == 4096
        assert PERLMUTTER.num_nodes(2) == 1
        with pytest.raises(ValueError):
            FRONTIER.num_nodes(12)

    def test_peak_flops_aggregate(self):
        # 32,768 GCDs of Frontier: 6.27 advertised Eflop/s.
        assert FRONTIER.peak_flops(32768) == pytest.approx(
            32768 * 191.5e12
        )
        assert FRONTIER.peak_flops(32768, empirical=True) == pytest.approx(
            32768 * 125e12
        )


class TestPlacement:
    def test_block_placement(self):
        p = Placement(FRONTIER, 32)
        assert p.num_nodes == 4
        assert p.node_of(0) == 0
        assert p.node_of(7) == 0
        assert p.node_of(8) == 1
        assert p.local_rank_of(9) == 1
        assert p.same_node(0, 7)
        assert not p.same_node(7, 8)

    def test_out_of_range(self):
        p = Placement(PERLMUTTER, 8)
        with pytest.raises(ValueError):
            p.node_of(8)

    def test_nodes_spanned(self):
        p = Placement(PERLMUTTER, 16)
        assert p.nodes_spanned([0, 1, 4, 12]) == {0, 1, 3}

    def test_too_large(self):
        with pytest.raises(ValueError):
            Placement(PERLMUTTER, 10**6)


class TestRings:
    def test_ring_orders_by_node(self):
        p = Placement(PERLMUTTER, 16)
        # Interleaved ranks from two nodes get grouped by node.
        ring = build_ring([0, 4, 1, 5], p)
        assert ring.order == (0, 1, 4, 5)

    def test_intra_node_ring_has_no_crossings(self):
        p = Placement(FRONTIER, 16)
        ring = build_ring([0, 1, 2, 3], p)
        assert inter_node_edges(ring, p) == []

    def test_two_node_ring_has_two_crossings(self):
        """Figure 3 of the paper: 8 GPUs on 2 nodes -> 2 crossing edges."""
        p = Placement(PERLMUTTER, 8)
        ring = build_ring(list(range(8)), p)
        crossings = inter_node_edges(ring, p)
        assert len(crossings) == 2  # one out, one wraparound back

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            Ring((0, 0, 1))

    def test_bottleneck_intra_node(self):
        p = Placement(PERLMUTTER, 8)
        ring = build_ring([0, 1, 2, 3], p)
        assert ring_bottleneck_bandwidth(ring, p) == PERLMUTTER.intra_node_bw

    def test_bottleneck_inter_node(self):
        p = Placement(PERLMUTTER, 8)
        ring = build_ring(list(range(8)), p)
        assert ring_bottleneck_bandwidth(ring, p) == min(
            PERLMUTTER.inter_node_bw, PERLMUTTER.intra_node_bw
        )

    def test_singleton_ring_infinite_bw(self):
        p = Placement(PERLMUTTER, 4)
        ring = build_ring([2], p)
        assert ring_bottleneck_bandwidth(ring, p) == float("inf")


class TestBandwidthSharing:
    def test_single_spanning_ring_gets_full_nic(self):
        """Figure 3: one ring over two nodes uses the full inter-node BW."""
        p = Placement(PERLMUTTER, 8)
        ring = build_ring(list(range(8)), p)
        (bw,) = shared_ring_bandwidths([ring], p)
        assert bw == PERLMUTTER.inter_node_bw

    def test_two_concurrent_rings_halve_bandwidth(self):
        """Figure 4: two rings across the same two nodes share the NICs."""
        p = Placement(PERLMUTTER, 8)
        rings = [
            build_ring([0, 2, 4, 6], p),
            build_ring([1, 3, 5, 7], p),
        ]
        bws = shared_ring_bandwidths(rings, p)
        assert bws == [PERLMUTTER.inter_node_bw / 2] * 2

    def test_sharing_bounded_by_gpus_per_node(self):
        """At most gpus_per_node rings can cross out of one node."""
        p = Placement(PERLMUTTER, 8)
        rings = [build_ring([i, i + 4], p) for i in range(4)]
        bws = shared_ring_bandwidths(rings, p)
        assert bws == [PERLMUTTER.inter_node_bw / 4] * 4

    def test_intra_node_rings_do_not_share_nics(self):
        p = Placement(FRONTIER, 8)
        # (0,1) share an MI250X die; (2,4) are on different packages.
        rings = [build_ring([0, 1], p), build_ring([2, 4], p)]
        bws = shared_ring_bandwidths(rings, p)
        assert bws == [FRONTIER.same_die_bw, FRONTIER.intra_node_bw]

    def test_frontier_same_die_pairs_are_fast(self):
        p = Placement(FRONTIER, 8)
        fast = ring_bottleneck_bandwidth(build_ring([0, 1], p), p)
        slow = ring_bottleneck_bandwidth(build_ring([0, 2], p), p)
        assert fast == FRONTIER.same_die_bw
        assert slow == FRONTIER.intra_node_bw
        assert fast > slow

    def test_full_node_ring_bottlenecked_by_cross_die_links(self):
        p = Placement(FRONTIER, 8)
        ring = build_ring(list(range(8)), p)
        assert ring_bottleneck_bandwidth(ring, p) == FRONTIER.intra_node_bw

    def test_mixed_rings(self):
        p = Placement(PERLMUTTER, 8)
        rings = [
            build_ring(list(range(8)), p),  # spans nodes, uses edge (0,1)
            build_ring([0, 1], p),  # intra-node, also uses edge (0,1)
        ]
        bws = shared_ring_bandwidths(rings, p)
        # Both rings contend on device pair (0,1), halving that edge —
        # which also becomes the big ring's bottleneck.
        assert bws[0] == PERLMUTTER.intra_node_bw / 2
        assert bws[1] == PERLMUTTER.intra_node_bw / 2

    def test_disjoint_intra_node_ring_gets_full_fabric(self):
        p = Placement(PERLMUTTER, 8)
        rings = [
            build_ring(list(range(4, 8)), p),  # node 1 only
            build_ring([0, 1], p),  # node 0 only, disjoint pairs
        ]
        bws = shared_ring_bandwidths(rings, p)
        assert bws[1] == PERLMUTTER.intra_node_bw


class TestPlacementStrategies:
    def test_round_robin_mapping(self):
        p = Placement(FRONTIER, 32, strategy="round_robin")
        assert p.num_nodes == 4
        assert p.node_of(0) == 0
        assert p.node_of(1) == 1
        assert p.node_of(4) == 0
        assert p.local_rank_of(4) == 1
        # Every node hosts exactly gpus_per_node ranks.
        from collections import Counter

        counts = Counter(p.node_of(r) for r in range(32))
        assert all(c == 8 for c in counts.values())

    def test_block_is_default(self):
        p = Placement(FRONTIER, 16)
        assert p.strategy == "block"
        assert p.node_of(7) == 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            Placement(FRONTIER, 16, strategy="hilbert")

    def test_round_robin_divisibility(self):
        with pytest.raises(ValueError):
            Placement(PERLMUTTER, 6, strategy="round_robin")

    def test_round_robin_scatters_consecutive_ranks(self):
        """The property that hurts: consecutive ranks (the innermost
        process groups) land on different nodes."""
        p = Placement(FRONTIER, 64, strategy="round_robin")
        assert len(p.nodes_spanned(list(range(8)))) == 8
        b = Placement(FRONTIER, 64, strategy="block")
        assert len(b.nodes_spanned(list(range(8)))) == 1
