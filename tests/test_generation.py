"""Tests for KV-cached incremental decoding."""

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.nn import GPT, KVCache, decode_step, generate_greedy, prefill
from repro.tensor import no_grad


def model_for(seed=0, layers=3, hidden=32, heads=4, seq=24, vocab=64):
    return GPT(
        GPTConfig(
            name="g", num_layers=layers, hidden_size=hidden,
            num_heads=heads, seq_len=seq, vocab_size=vocab,
        ),
        seed=seed,
    )


class TestCacheEquivalence:
    def test_prefill_logits_match_full_forward(self):
        model = model_for()
        ids = np.random.default_rng(0).integers(0, 64, (2, 10))
        with no_grad():
            full = model(ids).data
        logits, cache = prefill(model, ids)
        np.testing.assert_allclose(logits, full[:, -1], rtol=1e-12, atol=1e-12)
        assert cache.seq_len == 10

    def test_decode_step_matches_full_forward(self):
        """Each incremental step's logits equal a from-scratch forward of
        the whole sequence so far."""
        model = model_for(seed=3)
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 64, (1, 6))
        logits, cache = prefill(model, ids)
        seq = ids
        for _ in range(5):
            nxt = rng.integers(0, 64, 1)
            seq = np.concatenate([seq, nxt[None, :]], axis=1)
            logits = decode_step(model, nxt, cache)
            with no_grad():
                full = model(seq).data[:, -1]
            np.testing.assert_allclose(logits, full, rtol=1e-12, atol=1e-12)

    def test_generate_matches_uncached(self):
        from repro.memorization import greedy_continuation

        model = model_for(seed=5)
        prefix = np.random.default_rng(2).integers(0, 64, 9)
        cached = generate_greedy(model, prefix, 8)
        # Force the uncached sliding-window path by comparison on a
        # second model with tight context.
        uncached = []
        ids = prefix.copy()
        with no_grad():
            for _ in range(8):
                nxt = int(np.argmax(model(ids[None, :]).data[0, -1]))
                uncached.append(nxt)
                ids = np.append(ids, nxt)
        np.testing.assert_array_equal(cached, uncached)
        # And the public evaluator function agrees.
        np.testing.assert_array_equal(
            greedy_continuation(model, prefix, 8), cached
        )

    def test_batched_prefill(self):
        model = model_for(seed=7)
        ids = np.random.default_rng(3).integers(0, 64, (3, 8))
        logits, cache = prefill(model, ids)
        assert logits.shape == (3, 64)
        assert cache.keys[0].shape[0] == 3


class TestCacheMechanics:
    def test_cache_grows(self):
        model = model_for()
        _, cache = prefill(model, np.zeros((1, 4), dtype=int))
        assert cache.seq_len == 4
        decode_step(model, np.array([1]), cache)
        assert cache.seq_len == 5

    def test_context_overflow_rejected(self):
        model = model_for(seq=8)
        _, cache = prefill(model, np.zeros((1, 8), dtype=int))
        with pytest.raises(ValueError):
            decode_step(model, np.array([0]), cache)

    def test_generate_validation(self):
        model = model_for()
        with pytest.raises(ValueError):
            generate_greedy(model, np.zeros(4, dtype=int), 0)

    def test_empty_cache_properties(self):
        c = KVCache()
        assert c.seq_len == 0


class TestModelGenerateMethod:
    def test_generate_delegates_to_cached_decoding(self):
        model = model_for(seed=9)
        prefix = np.array([1, 2, 3])
        a = model.generate(prefix, 5)
        b = generate_greedy(model, prefix, 5)
        np.testing.assert_array_equal(a, b)


class TestKVCacheCopyComplexity:
    """Regression for the O(S^2) append: the cache must not re-copy its
    whole history every step.

    The pre-fix implementation concatenated per step, moving
    ``sum_{t<=S} t`` tokens to decode ``S`` of them; block growth with
    geometric doubling moves O(S).  ``copied_bytes`` counts every byte
    the cache writes or moves, so a linear bound on it *is* the
    complexity assertion.
    """

    def test_append_bytes_are_linear_not_quadratic(self):
        heads, hd, steps = 2, 4, 512
        cache = KVCache(block_tokens=8)
        k = np.ones((1, heads, 1, hd))
        for _ in range(steps):
            cache.append(0, k, k)
        per_step = 2 * k.nbytes  # k and v
        linear = steps * per_step
        quadratic = steps * (steps + 1) // 2 * per_step
        # Writes + doubling copies stay within a small constant of
        # linear; the concat cache's traffic is ~steps/2 times larger.
        assert cache.copied_bytes <= 4 * linear
        assert cache.copied_bytes < quadratic / 10
        assert cache.seq_len == steps

    def test_doubling_preserves_contents(self):
        cache = KVCache(block_tokens=4)
        rng = np.random.default_rng(0)
        chunks = [rng.standard_normal((1, 2, n, 3)) for n in (3, 5, 1, 9)]
        for c in chunks:
            cache.append(0, c, 2 * c)
        ref = np.concatenate(chunks, axis=2)
        np.testing.assert_array_equal(cache.keys[0], ref)
        np.testing.assert_array_equal(cache.values[0], 2 * ref)


class TestGenerationValidation:
    """Regression: empty prefixes used to crash deep inside the matmul
    with an opaque shape error; now they are rejected at the API edge."""

    def test_prefill_rejects_empty_prefix(self):
        model = model_for()
        with pytest.raises(ValueError, match="empty"):
            prefill(model, np.zeros((1, 0), dtype=int))

    def test_generate_rejects_empty_prefix(self):
        model = model_for()
        with pytest.raises(ValueError, match="at least one token"):
            generate_greedy(model, np.zeros(0, dtype=int), 4)

    def test_generate_rejects_2d_prefix(self):
        model = model_for()
        with pytest.raises(ValueError):
            generate_greedy(model, np.zeros((1, 4), dtype=int), 4)

    def test_decode_step_accepts_2d_tokens(self):
        model = model_for(seed=11)
        ids = np.random.default_rng(4).integers(0, 64, (2, 6))
        _, cache_a = prefill(model, ids)
        _, cache_b = prefill(model, ids)
        tok = np.array([5, 9])
        a = decode_step(model, tok, cache_a)
        b = decode_step(model, tok[:, None], cache_b)  # already (B, 1)
        np.testing.assert_array_equal(a, b)

    def test_decode_step_rejects_bad_shapes(self):
        model = model_for()
        _, cache = prefill(model, np.zeros((1, 4), dtype=int))
        with pytest.raises(ValueError):
            decode_step(model, np.zeros((1, 2), dtype=int), cache)
        with pytest.raises(ValueError):
            decode_step(model, np.zeros((1, 1, 1), dtype=int), cache)
