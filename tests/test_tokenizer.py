"""Tests for the BPE tokenizer and the tokenized text corpus."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memorization import (
    BPETokenizer,
    ExperimentConfig,
    TextCorpus,
    make_wordlist,
    run_experiment,
    scale_ladder,
)

TRAIN_TEXTS = [
    "the cat sat on the mat",
    "the dog sat on the log",
    "a cat and a dog and a log",
    "the mat and the log sat",
]


class TestBPETraining:
    def test_vocab_contains_alphabet_and_merges(self):
        tok = BPETokenizer.train(TRAIN_TEXTS, vocab_size=40)
        for ch in "catdogmlsn":
            assert ch in tok.vocab
        assert len(tok.merges) > 0
        assert tok.vocab_size <= 40

    def test_deterministic(self):
        a = BPETokenizer.train(TRAIN_TEXTS, vocab_size=40)
        b = BPETokenizer.train(TRAIN_TEXTS, vocab_size=40)
        assert a.vocab == b.vocab
        assert a.merges == b.merges

    def test_frequent_words_become_single_tokens(self):
        """'the' appears most; with enough budget it merges fully."""
        tok = BPETokenizer.train(TRAIN_TEXTS, vocab_size=60)
        ids = tok.encode("the")
        assert len(ids) == 1

    def test_merges_stop_at_singletons(self):
        # A tiny corpus can't fill a huge budget; training must stop.
        tok = BPETokenizer.train(["ab ab"], vocab_size=1000)
        assert tok.vocab_size < 1000

    def test_vocab_size_validation(self):
        with pytest.raises(ValueError):
            BPETokenizer.train(TRAIN_TEXTS, vocab_size=4)


class TestEncodeDecode:
    def test_roundtrip(self):
        tok = BPETokenizer.train(TRAIN_TEXTS, vocab_size=50)
        for text in TRAIN_TEXTS:
            assert tok.decode(tok.encode(text)) == text

    def test_unknown_characters_map_to_unk(self):
        tok = BPETokenizer.train(TRAIN_TEXTS, vocab_size=40)
        ids = tok.encode("xyzzy!")
        assert tok.vocab[tok.unk_token] in ids

    def test_compression(self):
        """Merges make frequent text shorter than characters."""
        tok = BPETokenizer.train(TRAIN_TEXTS, vocab_size=60)
        tpw = tok.tokens_per_word(TRAIN_TEXTS)
        chars_pw = sum(
            len(w) + 1 for t in TRAIN_TEXTS for w in t.split()
        ) / sum(len(t.split()) for t in TRAIN_TEXTS)
        assert 1.0 <= tpw < chars_pw

    def test_tokens_per_word_validation(self):
        tok = BPETokenizer.train(TRAIN_TEXTS, vocab_size=40)
        with pytest.raises(ValueError):
            tok.tokens_per_word([""])

    @given(st.lists(st.sampled_from(["cat", "dog", "mat", "the", "log"]), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, words):
        tok = BPETokenizer.train(TRAIN_TEXTS, vocab_size=50)
        text = " ".join(words)
        assert tok.decode(tok.encode(text)) == text


class TestWordlist:
    def test_fixed_and_distinct(self):
        a = make_wordlist(50, seed=7)
        b = make_wordlist(50, seed=7)
        assert a == b
        assert len(set(a)) == 50
        assert all(w.isalpha() for w in a)


class TestTextCorpus:
    def test_documents_fixed_length_and_deterministic(self):
        c = TextCorpus(doc_len=24, seed=0)
        a = c.document(3)
        b = c.document(3)
        np.testing.assert_array_equal(a.tokens, b.tokens)
        assert len(a) == 24
        assert a.tokens.max() < c.vocab_size

    def test_documents_distinct(self):
        c = TextCorpus(doc_len=24, seed=0)
        docs = c.documents(0, 8)
        for i in range(len(docs)):
            for j in range(i + 1, len(docs)):
                assert not np.array_equal(docs[i].tokens, docs[j].tokens)

    def test_article_text_is_words(self):
        c = TextCorpus(doc_len=16, seed=1)
        text = c.article_text(0)
        assert all(w.isalpha() for w in text.split())

    def test_tokens_decode_to_text_prefix(self):
        """The document's tokens decode back to a prefix of the article."""
        c = TextCorpus(doc_len=20, seed=2)
        doc = c.document(5)
        decoded = c.tokenizer.decode(list(doc.tokens))
        # Token truncation can split the final word; all earlier words match.
        original = c.article_text(5)
        assert original.startswith(" ".join(decoded.split()[:-1]))

    def test_background_batch_shape(self):
        c = TextCorpus(doc_len=16, seed=0)
        rng = np.random.default_rng(0)
        assert c.background_batch(3, rng).shape == (3, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            TextCorpus(doc_len=4)
        with pytest.raises(ValueError):
            TextCorpus(doc_len=16).document(-1)


class TestTextModeExperiment:
    def test_experiment_runs_on_text_corpus(self):
        """The full memorization harness accepts the tokenized text
        pipeline — the closest analogue of the paper's Wikipedia setup."""
        corpus = TextCorpus(doc_len=32, seed=3, bpe_vocab=120)
        cfg = scale_ladder(vocab_size=corpus.vocab_size)[0]
        exp = ExperimentConfig(
            vocab_size=corpus.vocab_size, docs_per_bucket=2,
            pretrain_steps=15, warmup_steps=2,
        )
        r = run_experiment(cfg, exp, corpus=corpus)
        assert set(r.exact_match) == {0, 1, 4, 6}

    def test_doc_len_mismatch_rejected(self):
        corpus = TextCorpus(doc_len=16, seed=0)
        cfg = scale_ladder(vocab_size=corpus.vocab_size)[0]
        with pytest.raises(ValueError):
            run_experiment(cfg, ExperimentConfig(doc_len=32), corpus=corpus)

    def test_vocab_mismatch_rejected(self):
        corpus = TextCorpus(doc_len=32, seed=0, bpe_vocab=192)
        cfg = scale_ladder(vocab_size=64)[0]  # smaller than the tokenizer
        with pytest.raises(ValueError):
            run_experiment(
                cfg, ExperimentConfig(vocab_size=64), corpus=corpus
            )
