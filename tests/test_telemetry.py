"""Telemetry subsystem tests: spans, metrics, exporters, and the wiring
into the runtime, trainer, and simulator.

The load-bearing contracts:

* spans nest (depth + ``root;child`` paths) and cost nothing when no
  tracer is active;
* byte counters mirror ``CommTracer`` semantics exactly, so per-tag
  sums equal the analytic volumes from :mod:`repro.perfmodel`;
* every exporter emits documents a real viewer would accept
  (:func:`validate_chrome_trace` is the stand-in Perfetto).
"""

import json

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.core import Grid4D, GridConfig, ParallelGPT
from repro.nn import GPT, AdamW, MixedPrecisionTrainer
from repro.perfmodel import gpt_forward_backward_volumes
from repro.runtime import CommTracer, ProcessGroup
from repro.runtime import collectives as rc
from repro.telemetry import (
    BENCH_SCHEMA,
    MetricsRegistry,
    TraceEvent,
    Tracer,
    ascii_flamegraph,
    bench_summary,
    chrome_trace,
    get_tracer,
    set_tracer,
    telemetry_scope,
    traced,
    tracer_events,
    validate_chrome_trace,
    write_bench_json,
    write_chrome_trace,
)


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestSpans:
    def test_nesting_depth_and_paths(self):
        clk = FakeClock()
        tr = Tracer(clock=clk)
        with tr.span("root", cat="train"):
            clk.advance(1.0)
            with tr.span("child", cat="comm"):
                clk.advance(0.5)
            clk.advance(0.25)
        child, root = tr.spans  # inner closes first
        assert (child.name, child.depth, child.path) == ("child", 1, "root;child")
        assert child.duration == pytest.approx(0.5)
        assert (root.name, root.depth, root.path) == ("root", 0, "root")
        assert root.duration == pytest.approx(1.75)
        assert root.end == pytest.approx(root.start + 1.75)
        assert tr.by_path() == pytest.approx(
            {"root": 1.75, "root;child": 0.5}
        )
        assert tr.total_time() == pytest.approx(1.75)
        assert tr.total_time(cat="train") == pytest.approx(1.75)
        assert tr.total_time(cat="comm") == 0.0  # child is not a root span

    def test_sibling_spans_share_parent_prefix(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("a"):
            with tr.span("b"):
                pass
            with tr.span("c"):
                pass
        assert [s.path for s in tr.spans] == ["a;b", "a;c", "a"]

    def test_traced_decorator_nests_and_names(self):
        @traced(name="inner", cat="compute")
        def inner():
            return 41

        @traced(name="outer", cat="train")
        def outer():
            return inner() + 1

        # No ambient tracer: plain call, nothing recorded anywhere.
        assert get_tracer() is None
        assert outer() == 42

        tr = Tracer(clock=FakeClock())
        with telemetry_scope(tr):
            assert outer() == 42
        inner_span, outer_span = tr.spans
        assert outer_span.name == "outer" and outer_span.cat == "train"
        assert inner_span.path == "outer;inner"
        assert inner_span.depth == 1

    def test_traced_records_span_when_fn_raises(self):
        @traced
        def boom():
            raise RuntimeError("x")

        tr = Tracer(clock=FakeClock())
        with telemetry_scope(tr):
            with pytest.raises(RuntimeError):
                boom()
        assert len(tr.spans) == 1
        assert tr._stack == []  # stack unwound despite the exception

    def test_disabled_tracer_is_a_no_op(self):
        tr = Tracer(enabled=False)
        with tr.span("x"):
            pass
        tr.complete("y", 0.0, 1.0)
        tr.count_collective("all_reduce", 64, tag="t")
        assert tr.spans == []
        assert len(tr.metrics) == 0

        @traced
        def f():
            return 7

        with telemetry_scope(tr):
            assert f() == 7
        assert tr.spans == []

    def test_scope_restores_previous_tracer(self):
        outer_tr = Tracer()
        set_tracer(outer_tr)
        try:
            with telemetry_scope(Tracer()) as inner_tr:
                assert get_tracer() is inner_tr
            assert get_tracer() is outer_tr
        finally:
            set_tracer(None)
        assert get_tracer() is None

    def test_clear_resets_everything(self):
        clk = FakeClock()
        tr = Tracer(clock=clk)
        with tr.span("x"):
            clk.advance(1.0)
        tr.count_collective("all_reduce", 8)
        tr.clear()
        assert tr.spans == [] and len(tr.metrics) == 0
        clk.advance(3.0)
        with tr.span("y"):
            clk.advance(1.0)
        # Origin was re-based at clear() time.
        assert tr.spans[0].start == pytest.approx(3.0)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        m = MetricsRegistry()
        m.counter("c").add(2)
        m.counter("c").add(3)
        m.gauge("g").set(1.5)
        h = m.histogram("h")
        for v in (1, 2, 200):
            h.record(v)
        assert m.value("c") == 5
        assert m.value("g") == 1.5
        assert m.value("missing", default=-1) == -1
        assert h.summary()["count"] == 3
        assert "c" in m and len(m) == 3

    def test_counter_rejects_negative(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.counter("c").add(-1)

    def test_kind_mismatch(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_histogram_rejects_non_finite(self, bad):
        """Regression: ``record(nan)`` used to blow up *after* mutating
        count/total/min/max (and ``record(inf)`` raised OverflowError
        from the bucket math), leaving the instrument corrupted."""
        m = MetricsRegistry()
        h = m.histogram("h")
        h.record(2.0)
        with pytest.raises(ValueError):
            h.record(bad)
        # The failed record must leave no trace in any field.
        assert h.count == 1
        assert h.total == 2.0
        assert h.min == 2.0
        assert h.max == 2.0
        assert sum(h.buckets.values()) == 1

    def test_histogram_negative_leaves_state_untouched(self):
        m = MetricsRegistry()
        h = m.histogram("h")
        h.record(3.0)
        with pytest.raises(ValueError):
            h.record(-1.0)
        assert (h.count, h.total, h.min, h.max) == (1, 3.0, 3.0, 3.0)
        assert sum(h.buckets.values()) == 1

    def test_count_collective_accumulates(self):
        tr = Tracer()
        tr.count_collective("all_reduce", 64, tag="t", group_size=4)
        tr.count_collective("all_reduce", 64, tag="t", group_size=4)
        tr.count_collective("all_gather", 16)
        assert tr.metrics.value("comm.calls.all_reduce") == 2
        assert tr.metrics.value("comm.bytes.all_reduce") == 128
        assert tr.metrics.value("comm.tag_bytes.t") == 128
        assert tr.metrics.value("comm.calls.all_gather") == 1


class TestRuntimeWiring:
    def _buffers(self, group, n=8):
        return {r: np.full(n, float(r + 1)) for r in group}

    def test_all_reduce_counts_once_not_per_subcollective(self):
        """all_reduce = reduce_scatter + all_gather internally; the
        byte counters must see ONE all_reduce, zero standalone rs/ag."""
        group = ProcessGroup(tuple(range(4)))
        tr = Tracer()
        with telemetry_scope(tr):
            rc.all_reduce(self._buffers(group), group, tag="t")
        assert tr.metrics.value("comm.calls.all_reduce") == 1
        assert tr.metrics.value("comm.bytes.all_reduce") == 8 * 8
        assert tr.metrics.value("comm.calls.reduce_scatter", default=0) == 0
        assert tr.metrics.value("comm.calls.all_gather", default=0) == 0
        # ... but the internal sub-collectives do appear as nested spans.
        paths = {s.path for s in tr.spans}
        assert "all_reduce" in paths
        assert "all_reduce;reduce_scatter" in paths
        assert "all_reduce;all_gather" in paths

    def test_bytes_match_commtracer_semantics(self):
        """Telemetry bytes == CommTracer.bytes_per_rank for each call."""
        group = ProcessGroup(tuple(range(2)))
        comm = CommTracer()
        tel = Tracer()
        with telemetry_scope(tel):
            rc.all_gather(self._buffers(group, n=4), group, tracer=comm, tag="x")
        rec = comm.records[-1]
        assert tel.metrics.value("comm.bytes.all_gather") == rec.bytes_per_rank
        assert tel.metrics.value("comm.tag_bytes.x") == rec.bytes_per_rank

    def test_parallel_gpt_counters_match_analytic_volume(self):
        """The acceptance criterion: byte counters from a real forward
        agree with repro.perfmodel's analytic volumes."""
        gx, gy, gz = 2, 1, 1
        cfg = GPTConfig(
            name="t", num_layers=2, hidden_size=8 * gx * gy * gz,
            num_heads=2 * gx, seq_len=8, vocab_size=16 * gx,
        )
        grid = Grid4D(GridConfig(gx, gy, gz))
        par = ParallelGPT.from_serial(GPT(cfg, seed=0), grid)
        batch = 2 * gz
        ids = np.random.default_rng(0).integers(0, cfg.vocab_size, (batch, 7))
        tr = Tracer()
        with telemetry_scope(tr):
            par.loss(ids)
        vol = gpt_forward_backward_volumes(
            cfg, batch, grid.config, dtype_bytes=8, seq_len=6
        )
        val = tr.metrics.value
        assert val("comm.tag_bytes.linear.AG_z") == pytest.approx(vol.ag_z)
        assert val("comm.tag_bytes.linear.AR_x") + val(
            "comm.tag_bytes.linear.AR_y"
        ) == pytest.approx(vol.ar_fwd)

    def test_trainer_counters(self):
        cfg = GPTConfig(
            name="t", num_layers=1, hidden_size=8, num_heads=2,
            seq_len=8, vocab_size=16,
        )
        model = GPT(cfg, seed=0)
        trainer = MixedPrecisionTrainer(
            model, AdamW(model.parameters(), lr=1e-3), accumulation_steps=2
        )
        ids = np.random.default_rng(0).integers(0, 16, (4, 6))
        tr = Tracer()
        with telemetry_scope(tr):
            trainer.step(ids)
        assert tr.metrics.value("train.micro_steps") == 2
        assert tr.metrics.value("train.optimizer_steps") == 1
        assert any(s.name == "train.step" for s in tr.spans)

    def test_no_tracer_no_counters(self):
        """Instrumented code paths run identically with telemetry off."""
        group = ProcessGroup(tuple(range(2)))
        out_quiet = rc.all_reduce(self._buffers(group), group)
        tr = Tracer()
        with telemetry_scope(tr):
            out_traced = rc.all_reduce(self._buffers(group), group)
        for r in group:
            np.testing.assert_array_equal(out_quiet[r], out_traced[r])


class TestChromeTraceExport:
    def _tracer_with_spans(self):
        clk = FakeClock()
        tr = Tracer(clock=clk)
        with tr.span("step", cat="train"):
            clk.advance(0.002)
            with tr.span("all_reduce", cat="comm"):
                clk.advance(0.001)
        return tr

    def test_chrome_trace_is_valid_and_in_microseconds(self):
        tr = self._tracer_with_spans()
        doc = chrome_trace(tr, metadata={"run": "unit"})
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"] == {"run": "unit"}
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        assert by_name["all_reduce"]["dur"] == pytest.approx(1000.0)
        assert by_name["step"]["dur"] == pytest.approx(3000.0)
        assert by_name["all_reduce"]["args"]["depth"] == 1
        json.dumps(doc)  # serializable

    def test_write_and_reload(self, tmp_path):
        tr = self._tracer_with_spans()
        path = write_chrome_trace(tmp_path / "t.json", tr)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        assert len(doc["traceEvents"]) == 2

    def test_write_refuses_invalid_events(self, tmp_path):
        bad = [TraceEvent(name="x", start=-5.0, duration=1.0)]
        with pytest.raises(ValueError):
            write_chrome_trace(tmp_path / "bad.json", bad)

    @pytest.mark.parametrize(
        "doc,fragment",
        [
            ([], "top level"),
            ({}, "traceEvents"),
            ({"traceEvents": [{"ph": "Z", "ts": 0, "pid": 1, "tid": 1}]},
             "phase"),
            ({"traceEvents": [{"name": "x", "ph": "X", "ts": True, "dur": 1,
                               "pid": 1, "tid": 1}]}, "'ts'"),
            ({"traceEvents": [{"name": "x", "ph": "X", "ts": 0,
                               "pid": 1, "tid": 1}]}, "'dur'"),
        ],
    )
    def test_validator_catches_malformed(self, doc, fragment):
        problems = validate_chrome_trace(doc)
        assert problems and fragment in problems[0]

    def test_simulator_timeline_exports_through_same_path(self):
        from repro.simulate import Timeline

        tl = Timeline()
        tl.add("compute", "gemm", 0.0, 1.0)
        tl.add("comm.z", "all_gather", 0.5, 1.5)
        events = tl.to_trace_events()
        assert all(isinstance(e, TraceEvent) for e in events)
        assert {e.tid for e in events} == {"compute", "comm.z"}
        assert validate_chrome_trace(tl.to_chrome_trace()) == []


class TestBenchJson:
    def test_summary_schema(self):
        tr = Tracer()
        tr.count_collective("all_reduce", 64, tag="t")
        doc = bench_summary("unit", tr, meta={"grid": [2, 1, 1, 1]})
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["bench"] == "unit"
        assert doc["metrics"]["comm.bytes.all_reduce"] == 64
        assert doc["meta"]["grid"] == [2, 1, 1, 1]

    def test_write_bench_json_names_file(self, tmp_path):
        path = write_bench_json(tmp_path, "smoke", {"m": 1.0})
        assert path.name == "BENCH_smoke.json"
        doc = json.loads(path.read_text())
        assert doc["schema"] == BENCH_SCHEMA and doc["metrics"] == {"m": 1.0}

    def test_sim_metrics_record_to_registry(self):
        from repro.cluster import get_machine
        from repro.config import get_model
        from repro.simulate import compute_metrics

        rm = compute_metrics(
            get_model("GPT-5B"), 64, 64, get_machine("frontier"), 10.0
        )
        m = MetricsRegistry()
        rm.record_to(m)
        assert m.value("sim.num_gpus") == 64
        assert m.value("sim.total_flops") == pytest.approx(rm.total_flops)


class TestFlamegraph:
    def test_ascii_flamegraph_renders_hierarchy(self):
        clk = FakeClock()
        tr = Tracer(clock=clk)
        with tr.span("step"):
            clk.advance(0.8)
            with tr.span("comm"):
                clk.advance(0.2)
        art = ascii_flamegraph(tr, width=60)
        lines = art.splitlines()
        assert lines[0].startswith("step")
        assert lines[1].startswith("  comm")  # indented by depth
        assert "#" in lines[1] and "%" in lines[1]

    def test_empty_tracer(self):
        assert "no spans" in ascii_flamegraph(Tracer())

    def test_tracer_events_carry_depth(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("a"):
            with tr.span("b"):
                pass
        evs = tracer_events(tr)
        assert [e.args["depth"] for e in evs] == [1, 0]


class TestHistogramQuantile:
    """Bucket-interpolated quantiles: exact on single-bucket
    distributions, clamped to [min, max], monotone in q."""

    def test_constant_distribution_is_exact(self):
        h = MetricsRegistry().histogram("h")
        for _ in range(10):
            h.record(5.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 5.0

    def test_two_points_one_bucket_interpolate_exactly(self):
        # 3.0 and 4.0 share bucket (2, 4]; the [min, max] clamp makes
        # the within-bucket interpolation exact, not just bounded.
        h = MetricsRegistry().histogram("h")
        h.record(3.0)
        h.record(4.0)
        assert h.quantile(0.0) == 3.0
        assert h.quantile(1.0) == 4.0
        assert h.quantile(0.5) == pytest.approx(3.5)

    def test_quantiles_are_monotone_and_bounded(self):
        h = MetricsRegistry().histogram("h")
        rng = np.random.default_rng(0)
        for v in rng.uniform(0.1, 900.0, 200):
            h.record(v)
        qs = [h.quantile(q) for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)
        assert qs[0] >= h.min and qs[-1] <= h.max
        assert h.quantile(0.0) == h.min
        assert h.quantile(1.0) == h.max

    def test_p99_lands_in_top_bucket(self):
        h = MetricsRegistry().histogram("h")
        for _ in range(99):
            h.record(1.0)
        h.record(1000.0)
        # rank 0.99 * 99 = 98.01 sits just inside the tail bucket.
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.99) > 1.0

    def test_errors(self):
        h = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            h.quantile(0.5)  # empty
        h.record(2.0)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_summary_includes_quantiles(self):
        h = MetricsRegistry().histogram("h")
        s = h.summary()
        assert s["p50"] == 0.0 and s["p99"] == 0.0
        for _ in range(4):
            h.record(7.0)
        s = h.summary()
        assert s["p50"] == 7.0 and s["p99"] == 7.0
