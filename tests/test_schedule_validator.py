"""The SPMD schedule validator — and proof that it actually detects.

Two halves:

* unit tests of each invariant check on hand-built event schedules;
* **mutation tests**: record a genuinely clean schedule from the real 4D
  model, corrupt one rank's event stream the way real distributed bugs
  do (dropped all-reduce, reordered collectives, wrong communicator,
  size mismatch, unmatched p2p, double wait, asymmetric all-to-all), and
  assert the validator flags the offending rank and operation.  A
  detector that has never seen a positive is no detector.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.core import Grid4D, GridConfig, ParallelGPT, check_scheme_trace, axonn_init
from repro.runtime import (
    CommEvent,
    CommTracer,
    ProcessGroup,
    ScheduleValidationError,
    ScheduleValidator,
    all_reduce,
    iall_reduce,
    send_recv,
    validate_schedule,
)


def tiny_cfg(**kw):
    defaults = dict(
        name="tiny",
        num_layers=1,
        hidden_size=24,
        num_heads=4,
        seq_len=10,
        vocab_size=32,
    )
    defaults.update(kw)
    return GPTConfig(**defaults)


def gpt_trace(gx=2, gy=2, gz=2, gd=1, seed=0) -> CommTracer:
    """A clean schedule: one forward+backward of the tiny 4D GPT."""
    tracer = CommTracer()
    grid = Grid4D(GridConfig(gx, gy, gz, gd), tracer=tracer)
    model = ParallelGPT(grid, tiny_cfg(), seed=0)
    ids = np.random.default_rng(seed).integers(0, 32, (2 * gz * gd, 6))
    model.loss(ids).backward()
    return tracer


def coll(rank, group, op="all_reduce", count=8, dtype="float64", tag="t"):
    return CommEvent(rank=rank, op=op, group=group, dtype=dtype, count=count, tag=tag)


class TestCleanSchedules:
    def test_real_gpt_schedule_is_clean(self):
        assert validate_schedule(gpt_trace()) == []

    def test_empty_schedule_is_clean(self):
        assert validate_schedule([]) == []

    def test_assert_clean_raises_with_all_violations(self):
        events = [coll(0, (0, 1)), coll(1, (0, 1), count=99)]
        with pytest.raises(ScheduleValidationError) as e:
            ScheduleValidator(events).assert_clean()
        assert "rank 1" in str(e.value)

    def test_facade_validate(self):
        ctx = axonn_init(2, 1, 2, 1)
        model = ctx.parallelize(tiny_cfg())
        model.loss(np.random.default_rng(0).integers(0, 32, (2, 5))).backward()
        assert ctx.validate_schedule() == []
        ctx.assert_clean_schedule()

    def test_degenerate_scheme_trace_clean(self):
        tracer = gpt_trace(1, 1, 4, 1)
        assert check_scheme_trace("fsdp", tracer) == []

    def test_degenerate_scheme_trace_flags_missing_tag(self):
        tracer = CommTracer()  # empty trace: expected tags absent
        problems = check_scheme_trace("fsdp", tracer)
        assert any("linear.AG_z" in p for p in problems)


class TestMutationDroppedCollective:
    """Mutation 1: one rank silently skips an all-reduce (the classic
    conditional-collective bug) — flagged with that rank named."""

    def test_dropped_all_reduce_flags_rank(self):
        tracer = gpt_trace()
        events = list(tracer.events)
        # Drop rank 3's first all_reduce event.
        victim = next(
            i
            for i, e in enumerate(events)
            if e.rank == 3 and e.op == "all_reduce"
        )
        dropped = events[victim]
        del events[victim]
        violations = validate_schedule(events)
        assert violations, "dropped all-reduce went undetected"
        v = next(v for v in violations if v.check == "collective")
        assert v.rank == 3
        assert "missing" in v.message
        assert dropped.group == tuple(
            g for g in [dropped.group]
        )[0]  # sanity: the dropped op's group is known

    def test_dropped_alltoall_flags_rank(self):
        tr = CommTracer()
        g = ProcessGroup((0, 1, 2))
        chunks = {r: [np.ones((1, 2)) for _ in range(3)] for r in g.ranks}
        from repro.runtime import all_to_all

        all_to_all(chunks, g, tracer=tr, tag="moe.dispatch")
        events = [e for e in tr.events if not (e.rank == 1)]
        violations = validate_schedule(events)
        assert any(
            v.check == "collective" and v.rank == 1 for v in violations
        )


class TestMutationReorderedCollective:
    """Mutation 2: one rank issues the same collectives in a different
    order — same-group reorder desyncs positionally; cross-group reorder
    is the textbook two-communicator deadlock."""

    def test_same_group_reorder_flags_rank_and_op(self):
        g = (0, 1, 2)
        events = []
        for r in g:
            events.append(coll(r, g, op="all_gather", tag="AG"))
            events.append(coll(r, g, op="reduce_scatter", tag="RS"))
        # Rank 2 runs them in the opposite order.
        events = [e for e in events if e.rank != 2]
        events.append(coll(2, g, op="reduce_scatter", tag="RS"))
        events.append(coll(2, g, op="all_gather", tag="AG"))
        violations = validate_schedule(events)
        assert any(
            v.check == "collective"
            and v.rank == 2
            and v.op in ("reduce_scatter", "all_gather")
            for v in violations
        )

    def test_cross_group_reorder_is_deadlock(self):
        g1, g2 = (0, 1), (0, 1, 2)
        events = [
            # Rank 0: g1 then g2.  Rank 1: g2 then g1.  Both sequences
            # are internally consistent per group, yet the job hangs.
            coll(0, g1, tag="a"),
            coll(0, g2, tag="b"),
            coll(1, g2, tag="b"),
            coll(1, g1, tag="a"),
            coll(2, g2, tag="b"),
        ]
        violations = validate_schedule(events)
        assert any(v.check == "ordering" for v in violations)
        assert any("cyclic" in v.message for v in violations)


class TestMutationWrongGroup:
    """Mutation 3: one rank issues its collective on the wrong
    communicator (e.g. an X-group all-reduce on the Y group)."""

    def test_swapped_group_flags_rank(self):
        tracer = gpt_trace()
        events = list(tracer.events)
        # Take rank 0's first all_reduce and move it onto a different
        # group containing rank 0.
        i = next(
            k
            for k, e in enumerate(events)
            if e.rank == 0 and e.op == "all_reduce" and len(e.group) > 1
        )
        other = next(
            e.group
            for e in events
            if 0 in e.group and e.group != events[i].group and len(e.group) > 1
        )
        events[i] = dataclasses.replace(events[i], group=other)
        violations = validate_schedule(events)
        assert violations, "wrong-group collective went undetected"
        assert any(
            v.check == "collective" and v.rank == 0 for v in violations
        )


class TestMutationSizeMismatch:
    """Mutation 4: one rank contributes a truncated buffer — the NCCL
    silent-corruption case the validator exists for."""

    def test_count_mismatch_flags_rank_and_op(self):
        g = (0, 1, 2, 3)
        events = [coll(r, g, count=64) for r in g]
        events[2] = dataclasses.replace(events[2], count=32)
        violations = validate_schedule(events)
        assert len(violations) == 1
        v = violations[0]
        assert (v.check, v.rank, v.op) == ("collective", 2, "all_reduce")
        assert "count 32" in v.message

    def test_dtype_mismatch_flags_rank(self):
        g = (0, 1, 2)
        events = [coll(r, g) for r in g]
        events[1] = dataclasses.replace(events[1], dtype="float32")
        violations = validate_schedule(events)
        assert [v.rank for v in violations] == [1]

    def test_real_trace_size_mutation(self):
        tracer = gpt_trace()
        events = list(tracer.events)
        i = next(
            k
            for k, e in enumerate(events)
            if e.op == "all_gather" and e.rank == 5 and len(e.group) > 1
        )
        events[i] = dataclasses.replace(events[i], count=events[i].count + 1)
        violations = validate_schedule(events)
        assert any(
            v.check == "collective" and v.rank == 5 and v.op == "all_gather"
            for v in violations
        )


class TestMutationUnmatchedP2P:
    """Mutation 5: pipeline p2p desyncs — a send no one receives, a recv
    no one sends, and a head-to-head recv/recv deadlock."""

    def _pipeline_events(self):
        tr = CommTracer()
        for mb in range(2):
            send_recv(np.ones(4), 0, 1, tracer=tr, tag=f"act:mb{mb}")
            send_recv(np.ones(4), 1, 2, tracer=tr, tag=f"act:mb{mb}")
        for mb in range(2):
            send_recv(np.ones(4), 2, 1, tracer=tr, tag=f"grad:mb{mb}")
            send_recv(np.ones(4), 1, 0, tracer=tr, tag=f"grad:mb{mb}")
        return list(tr.events)

    def test_clean_pipeline_p2p(self):
        assert validate_schedule(self._pipeline_events()) == []

    def test_dropped_recv_flags_channel(self):
        events = self._pipeline_events()
        i = next(
            k
            for k, e in enumerate(events)
            if e.op == "recv" and e.rank == 2
        )
        del events[i]
        violations = validate_schedule(events)
        assert any(
            v.check == "p2p" and "no matching recv" in v.message
            for v in violations
        )

    def test_truncated_message_flags_mismatch(self):
        events = self._pipeline_events()
        i = next(k for k, e in enumerate(events) if e.op == "recv")
        events[i] = dataclasses.replace(events[i], count=2)
        violations = validate_schedule(events)
        assert any(
            v.check == "p2p" and "does not match" in v.message
            for v in violations
        )

    def test_recv_recv_deadlock_detected(self):
        def ev(rank, op, peer):
            return CommEvent(
                rank=rank, op=op, group=tuple(sorted((rank, peer))),
                dtype="float64", count=4, tag="x", peer=peer,
            )

        # Both ranks post a blocking recv first: classic deadlock.
        events = [
            ev(0, "recv", 1),
            ev(0, "send", 1),
            ev(1, "recv", 0),
            ev(1, "send", 0),
        ]
        violations = validate_schedule(events)
        assert any(
            v.check == "p2p" and "cycle" in v.message for v in violations
        )


class TestMutationAllToAllAsymmetry:
    """Mutation 6: MoE combine splits that do not mirror dispatch —
    tokens would never return to their home rank."""

    def _moe_events(self):
        g = (0, 1)

        def a2a(rank, splits, tag):
            return CommEvent(
                rank=rank, op="all_to_all", group=g, dtype="float64",
                count=sum(splits), tag=tag, splits=splits,
            )

        return [
            a2a(0, (4, 6), "moe.dispatch"),
            a2a(1, (2, 8), "moe.dispatch"),
            a2a(0, (4, 2), "moe.combine"),
            a2a(1, (6, 8), "moe.combine"),
        ]

    def test_clean_transpose_accepted(self):
        assert validate_schedule(self._moe_events()) == []

    def test_asymmetric_combine_flags_rank(self):
        events = self._moe_events()
        events[2] = dataclasses.replace(events[2], splits=(4, 99), count=103)
        violations = validate_schedule(events)
        assert any(
            v.check == "alltoall" and v.rank == 0 and "asymmetric" in v.message
            for v in violations
        )

    def test_wrong_split_arity_flags_rank(self):
        events = self._moe_events()
        events[1] = dataclasses.replace(events[1], splits=(2, 8, 1))
        violations = validate_schedule(events)
        assert any(
            v.check == "alltoall" and v.rank == 1 and "splits" in v.message
            for v in violations
        )

    def test_real_moe_trace_mutation(self):
        from repro.moe import MoELayer
        from repro.moe.expert_parallel import ExpertParallelMoE
        from repro.tensor import Tensor

        rng = np.random.default_rng(0)
        layer = MoELayer(8, 4, k=2, rng=rng)
        group = ProcessGroup((0, 1))
        tr = CommTracer()
        ep = ExpertParallelMoE(layer, group, tracer=tr)
        ep.forward({r: Tensor(rng.standard_normal((5, 8))) for r in group})
        assert validate_schedule(tr) == []
        events = list(tr.events)
        i = next(
            k
            for k, e in enumerate(events)
            if e.tag == "moe.combine" and e.rank == 1
        )
        bad = (events[i].splits[0] + 8,) + events[i].splits[1:]
        events[i] = dataclasses.replace(events[i], splits=bad)
        assert any(
            v.check == "alltoall" and v.rank == 1
            for v in validate_schedule(events)
        )


class TestMutationHandleDiscipline:
    """Mutation 7: non-blocking handles waited twice, never, or out of
    thin air."""

    def _handle_events(self):
        tr = CommTracer()
        g = ProcessGroup((0, 1))
        h = iall_reduce({0: np.ones(4), 1: np.ones(4)}, g, tracer=tr)
        h.wait()
        return tr, list(tr.events)

    def test_clean_issue_wait(self):
        _, events = self._handle_events()
        assert validate_schedule(events) == []

    def test_missing_wait_flags_rank(self):
        _, events = self._handle_events()
        events = [e for e in events if e.op != "wait"]
        violations = validate_schedule(events)
        assert {v.rank for v in violations} == {0, 1}
        assert all("never waited" in v.message for v in violations)

    def test_double_wait_flags_rank(self):
        _, events = self._handle_events()
        wait0 = next(e for e in events if e.op == "wait" and e.rank == 0)
        events.append(wait0)
        violations = validate_schedule(events)
        assert any(
            v.check == "handle" and v.rank == 0 and "twice" in v.message
            for v in violations
        )

    def test_wait_without_issue_flags_rank(self):
        _, events = self._handle_events()
        stray = CommEvent(
            rank=0, op="wait", group=(0, 1), tag="", handle_id=77
        )
        violations = validate_schedule(events + [stray])
        assert any(
            v.check == "handle" and v.rank == 0 and "never issued" in v.message
            for v in violations
        )

    def test_runtime_double_wait_still_raises(self):
        g = ProcessGroup((0, 1))
        h = iall_reduce({0: np.ones(2), 1: np.ones(2)}, g)
        h.wait()
        with pytest.raises(RuntimeError):
            h.wait()


class TestValidatorReportQuality:
    def test_violation_str_names_rank_and_op(self):
        g = (0, 1, 2)
        events = [coll(r, g, count=64) for r in g]
        events[1] = dataclasses.replace(events[1], count=1)
        (v,) = validate_schedule(events)
        s = str(v)
        assert "rank 1" in s and "all_reduce" in s

    def test_multiple_independent_violations_all_reported(self):
        g = (0, 1, 2, 3)
        events = [coll(r, g, count=64, tag="first") for r in g]
        events += [coll(r, g, count=16, tag="second") for r in g]
        events[1] = dataclasses.replace(events[1], count=1)  # first, rank 1
        events[6] = dataclasses.replace(events[6], dtype="int32")  # second, rank 2
        violations = validate_schedule(events)
        assert {(v.rank, v.index) for v in violations} == {(1, 0), (2, 1)}


class TestTracerBackCompat:
    """The richer tracer keeps the historical record API intact."""

    def test_records_unchanged_semantics(self):
        tr = CommTracer()
        g = ProcessGroup((0, 1))
        all_reduce({0: np.ones(4), 1: np.ones(4)}, g, tracer=tr, tag="x")
        assert tr.ops() == ["all_reduce"]
        assert tr.total_bytes() == 32
        assert [r.tag for r in tr.by_tag("x")] == ["x"]

    def test_events_cleared_with_records(self):
        tr = CommTracer()
        all_reduce({0: np.ones(2)}, ProcessGroup((0,)), tracer=tr)
        assert tr.events
        tr.clear()
        assert tr.events == [] and tr.records == []

    def test_disabled_tracer_records_nothing(self):
        tr = CommTracer(enabled=False)
        all_reduce({0: np.ones(2)}, ProcessGroup((0,)), tracer=tr)
        send_recv(np.ones(2), 0, 1, tracer=tr)
        assert tr.events == [] and tr.records == []

    def test_events_for_rank_in_program_order(self):
        tracer = gpt_trace(2, 1, 1, 1)
        evs = tracer.events_for(0)
        assert all(e.rank == 0 for e in evs)
        assert len(evs) > 0
        assert tracer.event_ranks() == [0, 1]
