"""Grand integration: most subsystems chained in one realistic workflow.

Text corpus -> BPE tokenizer -> 4D-parallel GPT -> mixed-precision
training with gradient accumulation -> checkpoint -> reshard onto a
different grid -> resume -> KV-cached generation — the path a downstream
user would actually walk, exercised end to end with correctness checks
at every joint.
"""

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.core import (
    Grid4D,
    GridConfig,
    ParallelGPT,
    load_checkpoint,
    save_checkpoint,
)
from repro.memorization import TextCorpus
from repro.nn import GPT, AdamW, MixedPrecisionTrainer
from repro.runtime import CommTracer


def test_full_user_workflow(tmp_path):
    # --- data: tokenized pseudo-text articles --------------------------
    corpus = TextCorpus(doc_len=16, seed=0, bpe_vocab=96)
    vocab = corpus.vocab_size
    rng = np.random.default_rng(0)
    batches = [corpus.background_batch(4, rng) for _ in range(6)]
    roundtrip = corpus.tokenizer.decode(
        corpus.tokenizer.encode(corpus.article_text(0))
    )
    assert roundtrip.split()[0] == corpus.article_text(0).split()[0]

    # --- model: serial reference and its 4D twin ------------------------
    cfg = GPTConfig(
        name="e2e", num_layers=2, hidden_size=16, num_heads=4,
        seq_len=16, vocab_size=vocab,
    )
    serial = GPT(cfg, seed=1)
    tracer = CommTracer()
    grid_a = Grid4D(GridConfig(2, 1, 2), tracer=tracer)
    model = ParallelGPT.from_serial(serial, grid_a)
    assert model.loss(batches[0]).item() == pytest.approx(
        serial.loss(batches[0]).item(), rel=1e-10
    )

    # --- train: bf16 compute, 2-way accumulation, clipping ---------------
    trainer = MixedPrecisionTrainer(
        model, AdamW(model.parameters(), lr=3e-3),
        accumulation_steps=2, bf16=True, grad_clip=1.0,
    )
    losses = [trainer.step(b) for b in batches[:3]]
    assert losses[-1] < losses[0] * 1.05  # learning, not diverging
    assert trainer.skipped_steps == 0
    # Algorithm 1's collectives actually ran.
    tags = {r.tag for r in tracer.records if r.group.size > 1}
    assert "linear.AG_z" in tags and "linear.AR_x" in tags

    # --- checkpoint and reshard onto a different allocation ---------------
    save_checkpoint(model, tmp_path / "e2e.npz")
    grid_b = Grid4D(GridConfig(1, 2, 1))
    resumed = ParallelGPT(grid_b, cfg, seed=99)
    load_checkpoint(resumed, tmp_path / "e2e.npz")
    assert resumed.loss(batches[3]).item() == pytest.approx(
        model.loss(batches[3]).item(), rel=1e-10
    )

    # --- continue training on the new grid -------------------------------
    trainer_b = MixedPrecisionTrainer(
        resumed, AdamW(resumed.parameters(), lr=3e-3),
        accumulation_steps=2, bf16=True, grad_clip=1.0,
    )
    for b in batches[3:]:
        trainer_b.step(b)

    # --- inference: gather to serial, generate with the KV cache ----------
    final = resumed.gather_state_to_serial()
    prefix = corpus.document(5).tokens[:8]
    continuation = final.generate(prefix, 6)
    assert continuation.shape == (6,)
    assert (0 <= continuation).all() and (continuation < vocab).all()
    # Deterministic: the same prompt regenerates the same tokens.
    np.testing.assert_array_equal(final.generate(prefix, 6), continuation)
