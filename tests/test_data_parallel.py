"""Tests for explicit data parallelism and the degenerate-scheme map."""

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.core import (
    DEGENERATE_SCHEMES,
    Grid4D,
    GridConfig,
    ParallelGPT,
    allreduce_gradients,
    broadcast_parameters,
    data_parallel_step,
    make_degenerate_grid,
    replicas_in_sync,
)
from repro.nn import GPT, AdamW, SGD
from repro.runtime import CommTracer


def tiny_config(**kw) -> GPTConfig:
    defaults = dict(
        name="tiny", num_layers=1, hidden_size=16, num_heads=4,
        seq_len=8, vocab_size=24,
    )
    defaults.update(kw)
    return GPTConfig(**defaults)


class TestDataParallel:
    def test_broadcast_parameters(self):
        models = [GPT(tiny_config(), seed=s) for s in range(3)]
        assert not replicas_in_sync(models)
        broadcast_parameters(models)
        assert replicas_in_sync(models)

    def test_allreduce_gradients_averages(self):
        models = [GPT(tiny_config(), seed=0) for _ in range(2)]
        broadcast_parameters(models)
        ids = np.random.default_rng(0).integers(0, 24, (2, 6))
        for m, shard in zip(models, [ids[:1], ids[1:]]):
            m.loss(shard).backward()
        g_before = [
            dict((n, p.grad.copy()) for n, p in m.named_parameters())
            for m in models
        ]
        allreduce_gradients(models)
        for n, p in models[0].named_parameters():
            expect = (g_before[0][n] + g_before[1][n]) / 2
            np.testing.assert_allclose(p.grad, expect, rtol=1e-10)
        # All replicas now hold identical grads.
        for n, p in models[1].named_parameters():
            np.testing.assert_allclose(
                p.grad, dict(models[0].named_parameters())[n].grad, rtol=1e-12
            )

    def test_partial_gradients_rejected(self):
        models = [GPT(tiny_config(), seed=0) for _ in range(2)]
        ids = np.random.default_rng(0).integers(0, 24, (1, 6))
        models[0].loss(ids).backward()
        with pytest.raises(ValueError):
            allreduce_gradients(models)

    def test_step_matches_single_replica_big_batch(self):
        """2-replica data parallelism == serial training on the full
        batch (token-mean loss, averaged gradients)."""
        cfg = tiny_config()
        ids = np.random.default_rng(1).integers(0, cfg.vocab_size, (4, 8))

        ref = GPT(cfg, seed=0)
        ref_opt = SGD(ref.parameters(), lr=0.1)
        rl = ref.loss(ids)
        rl.backward()
        ref_opt.step()

        models = [GPT(cfg, seed=0), GPT(cfg, seed=99)]
        broadcast_parameters(models)
        opts = [SGD(m.parameters(), lr=0.1) for m in models]
        data_parallel_step(models, opts, ids)

        assert replicas_in_sync(models, atol=1e-12)
        for (n, p), (_, q) in zip(
            ref.named_parameters(), models[0].named_parameters()
        ):
            np.testing.assert_allclose(p.data, q.data, rtol=1e-9, atol=1e-11)

    def test_step_traces_dp_allreduce(self):
        models = [GPT(tiny_config(), seed=0) for _ in range(2)]
        broadcast_parameters(models)
        opts = [AdamW(m.parameters(), lr=1e-3) for m in models]
        tracer = CommTracer()
        ids = np.random.default_rng(2).integers(0, 24, (2, 6))
        data_parallel_step(models, opts, ids, tracer=tracer)
        assert all(r.op == "all_reduce" for r in tracer.records)
        assert len(tracer.records) == len(list(models[0].named_parameters()))
        # Validation-enabled mode: the gradient all-reduce schedule is
        # identical on every replica and passes all static SPMD checks.
        from repro.runtime import validate_schedule

        violations = validate_schedule(tracer)
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_batch_divisibility(self):
        models = [GPT(tiny_config(), seed=0) for _ in range(2)]
        opts = [SGD(m.parameters(), lr=0.1) for m in models]
        with pytest.raises(ValueError):
            data_parallel_step(models, opts, np.zeros((3, 6), dtype=int))

    def test_optimizer_count_check(self):
        models = [GPT(tiny_config(), seed=0) for _ in range(2)]
        with pytest.raises(ValueError):
            data_parallel_step(models, [], np.zeros((2, 6), dtype=int))

    def test_4d_replicas_with_explicit_dp(self):
        """Two ParallelGPT tensor blocks as data replicas, synced with
        real gradient all-reduces, match shared-parameter 4D training."""
        cfg = tiny_config()
        serial = GPT(cfg, seed=4)
        grid = Grid4D(GridConfig(2, 1, 1, 1))
        reps = [ParallelGPT.from_serial(serial, grid) for _ in range(2)]
        opts = [SGD(m.parameters(), lr=0.05) for m in reps]
        ids = np.random.default_rng(3).integers(0, cfg.vocab_size, (4, 8))
        loss = data_parallel_step(reps, opts, ids)
        assert np.isfinite(loss)
        assert replicas_in_sync(reps, atol=1e-12)

        # Reference: serial model trained on the full batch.
        ref_opt = SGD(serial.parameters(), lr=0.05)
        serial.loss(ids).backward()
        ref_opt.step()
        gathered = reps[0].gather_state_to_serial()
        for (n, p), (_, q) in zip(
            serial.named_parameters(), gathered.named_parameters()
        ):
            np.testing.assert_allclose(p.data, q.data, rtol=1e-8, atol=1e-10)


class TestDegenerateSchemes:
    def test_all_schemes_present(self):
        assert set(DEGENERATE_SCHEMES) == {
            "fsdp", "hsdp", "megatron", "pure_data", "axonn_4d",
        }

    def test_fsdp_grid(self):
        grid = make_degenerate_grid("fsdp", 8)
        assert grid.config.dims == (1, 1, 8, 1)

    def test_megatron_grid(self):
        grid = make_degenerate_grid("megatron", 8)
        assert grid.config.dims == (8, 1, 1, 1)

    def test_pure_data_grid(self):
        grid = make_degenerate_grid("pure_data", 16)
        assert grid.config.dims == (1, 1, 1, 16)

    def test_hsdp_grid_uses_node_size(self):
        from repro.cluster import FRONTIER, Placement

        grid = make_degenerate_grid("hsdp", 32, placement=Placement(FRONTIER, 32))
        assert grid.config.dims == (1, 1, 8, 4)

    def test_hsdp_custom_shard_group(self):
        grid = make_degenerate_grid("hsdp", 16, shard_group_size=4)
        assert grid.config.dims == (1, 1, 4, 4)

    def test_axonn_4d_balanced(self):
        grid = make_degenerate_grid("axonn_4d", 64)
        c = grid.config
        assert c.total == 64
        assert c.gx >= c.gy >= 1

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            make_degenerate_grid("pipeline", 8)

    def test_fsdp_comm_signature(self):
        """FSDP-degenerate: weight all-gathers over Z, no tensor-parallel
        all-reduces of activations."""
        cfg = tiny_config()
        tracer = CommTracer()
        grid = Grid4D(GridConfig(1, 1, 2, 1), tracer=tracer)
        model = ParallelGPT(grid, cfg, seed=0)
        ids = np.random.default_rng(0).integers(0, cfg.vocab_size, (2, 6))
        model.loss(ids).backward()
        tags = {r.tag for r in tracer.records if r.group.size > 1}
        assert "linear.AG_z" in tags
        assert "linear.AR_x" not in tags
        assert "linear.AR_y" not in tags

    def test_megatron_comm_signature(self):
        """Megatron-degenerate: activation all-reduces over X/Y, and the
        Z all-gathers collapse to size-1 groups (no communication)."""
        cfg = tiny_config()
        tracer = CommTracer()
        grid = Grid4D(GridConfig(2, 1, 1, 1), tracer=tracer)
        model = ParallelGPT(grid, cfg, seed=0)
        ids = np.random.default_rng(0).integers(0, cfg.vocab_size, (2, 6))
        model.loss(ids).backward()
        meaningful = {r.tag for r in tracer.records if r.group.size > 1}
        assert "linear.AR_x" in meaningful
        assert "linear.AG_z" not in meaningful

    def test_expected_tags_documented(self):
        for scheme in DEGENERATE_SCHEMES.values():
            assert scheme.description
            assert scheme.active_axes <= {"x", "y", "z", "data"}
