"""Checkpoint integrity: atomic writes, CRC manifests, the ring.

The checkpoint is a failure domain of its own: a node can die *during*
the write (torn file) and storage can corrupt bytes silently.  These
tests pin the three defenses — tmp + ``os.replace`` atomicity, the
per-array CRC32 manifest, and the keep-last-K ring's fall-back to the
newest checkpoint that verifies — and, crucially, that each test fails
when the corresponding defense is disabled (``atomic=False``, stale
manifest, corrupted newest ring entry).
"""

import numpy as np
import pytest

from repro.config import GPTConfig
from repro.core import (
    CheckpointRing,
    Grid4D,
    GridConfig,
    ParallelGPT,
    load_training_state,
    save_training_state,
    verify_checkpoint,
)
from repro.core.checkpoint_io import MANIFEST_KEY, _atomic_savez
from repro.nn import GPT, AdamW
from repro.runtime import (
    CheckpointCorruptionError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    TornWriteError,
    fault_scope,
)


def tiny_cfg():
    return GPTConfig(
        name="integ", num_layers=1, hidden_size=16, num_heads=4,
        seq_len=8, vocab_size=32,
    )


def serial_pair(cfg, seed=0, lr=1e-3):
    model = GPT(cfg, seed=seed)
    opt = AdamW(model.parameters(), lr=lr)
    return model, opt


def take_steps(model, opt, n=2, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        ids = rng.integers(0, model.cfg.vocab_size, (2, 6))
        model.loss(ids).backward()
        opt.step()
        model.zero_grad()


class TestAtomicWrite:
    def test_torn_write_leaves_previous_checkpoint_intact(self, tmp_path):
        """A torn write must only tear the tmp file: the previous
        checkpoint survives byte-for-byte and still verifies."""
        cfg = tiny_cfg()
        model, opt = serial_pair(cfg)
        path = tmp_path / "state.npz"
        inj = FaultInjector(FaultPlan((FaultSpec("torn_write", match=1),)))
        save_training_state(model, opt, path, injector=inj)  # save 0: clean
        before = path.read_bytes()

        take_steps(model, opt)
        with pytest.raises(TornWriteError):
            save_training_state(model, opt, path, injector=inj)
        assert inj.stats["torn_writes"] == 1
        assert path.read_bytes() == before
        verify_checkpoint(path)  # still loads clean

    def test_torn_write_without_atomicity_destroys_checkpoint(self, tmp_path):
        """Defense disabled: with ``atomic=False`` the same torn write
        lands on the live file and corrupts it — why tmp+replace exists."""
        cfg = tiny_cfg()
        model, opt = serial_pair(cfg)
        path = tmp_path / "state.npz"
        inj = FaultInjector(FaultPlan((FaultSpec("torn_write", match=1),)))
        save_training_state(model, opt, path, injector=inj)

        take_steps(model, opt)
        with pytest.raises(TornWriteError):
            save_training_state(model, opt, path, injector=inj, atomic=False)
        with pytest.raises(CheckpointCorruptionError):
            verify_checkpoint(path)

    def test_ambient_injector_is_picked_up(self, tmp_path):
        """Saves inside a fault_scope see the scope's injector without
        explicit plumbing."""
        cfg = tiny_cfg()
        model, opt = serial_pair(cfg)
        inj = FaultInjector(FaultPlan((FaultSpec("torn_write", match=0),)))
        with fault_scope(inj):
            with pytest.raises(TornWriteError):
                save_training_state(model, opt, tmp_path / "s.npz")


class TestCRCManifest:
    def test_roundtrip_verifies(self, tmp_path):
        arrays = {
            "a": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.ones(5, dtype=np.float32),
        }
        _atomic_savez(tmp_path / "x.npz", arrays)
        out = verify_checkpoint(tmp_path / "x.npz")
        assert set(out) == {"a", "b"}
        np.testing.assert_array_equal(out["a"], arrays["a"])

    def test_single_flipped_byte_caught_in_every_array(self, tmp_path):
        """Mutation sweep: flip one byte in each array (keeping the
        stale manifest) — the manifest must catch every single one."""
        arrays = {
            "w": np.linspace(0, 1, 32).reshape(4, 8),
            "m": np.zeros(16),
            "v": np.full((2, 3), 7.0),
            "t": np.asarray(9),
        }
        path = tmp_path / "x.npz"
        _atomic_savez(path, arrays)
        with np.load(path) as data:
            saved = {k: data[k] for k in data.files}
        manifest = saved.pop(MANIFEST_KEY)

        for name in arrays:
            mutated = {k: v.copy() for k, v in saved.items()}
            raw = (
                np.ascontiguousarray(mutated[name]).reshape(-1).view(np.uint8)
            )
            raw[raw.size // 2] ^= 0xFF
            mutated[name] = raw.view(saved[name].dtype).reshape(
                saved[name].shape
            )
            evil = tmp_path / f"evil-{name}.npz"
            # Re-save with the *original* manifest: only the CRC check
            # stands between this file and a silent bad restore.
            np.savez(evil, **mutated, **{MANIFEST_KEY: manifest})
            with pytest.raises(CheckpointCorruptionError, match=name):
                verify_checkpoint(evil)

    def test_missing_manifest_rejected(self, tmp_path):
        np.savez(tmp_path / "x.npz", a=np.ones(3))
        with pytest.raises(CheckpointCorruptionError, match="manifest"):
            verify_checkpoint(tmp_path / "x.npz")

    def test_dropped_and_added_arrays_rejected(self, tmp_path):
        path = tmp_path / "x.npz"
        _atomic_savez(path, {"a": np.ones(3), "b": np.zeros(2)})
        with np.load(path) as data:
            saved = {k: data[k] for k in data.files}
        dropped = {k: v for k, v in saved.items() if k != "b"}
        np.savez(tmp_path / "drop.npz", **dropped)
        with pytest.raises(CheckpointCorruptionError, match="inventory"):
            verify_checkpoint(tmp_path / "drop.npz")
        saved["c"] = np.ones(1)
        np.savez(tmp_path / "extra.npz", **saved)
        with pytest.raises(CheckpointCorruptionError, match="inventory"):
            verify_checkpoint(tmp_path / "extra.npz")

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "x.npz"
        _atomic_savez(path, {"a": np.arange(100.0)})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointCorruptionError):
            verify_checkpoint(path)


class TestCorruptCheckpointFault:
    def test_injected_corruption_caught_on_load(self, tmp_path):
        """The ``corrupt_checkpoint`` fault flips a bit silently after
        the write; the verifying loader must refuse the file."""
        cfg = tiny_cfg()
        model, opt = serial_pair(cfg)
        inj = FaultInjector(FaultPlan((FaultSpec("corrupt_checkpoint", match=0),)))
        path = tmp_path / "state.npz"
        save_training_state(model, opt, path, injector=inj)  # no raise
        assert inj.stats["ckpt_corruptions"] == 1
        with pytest.raises(CheckpointCorruptionError):
            load_training_state(model, opt, path)


class TestMomentPairing:
    def test_reordered_optimizer_params_restore_correctly(self, tmp_path):
        """Regression for the positional-zip bug: an optimizer whose
        parameter list is *reversed* relative to ``named_parameters()``
        (plenty of coincidentally-equal shapes in a transformer) must
        still get each moment back into the right slot."""
        cfg = tiny_cfg()
        model = GPT(cfg, seed=0)
        params = list(model.parameters())
        opt = AdamW(list(reversed(params)), lr=1e-3)
        take_steps(model, opt)
        saved_m = [m.copy() for m in opt._m]

        path = tmp_path / "state.npz"
        save_training_state(model, opt, path)

        # Fresh pair, same reversed order: moments must land where they
        # came from, not wherever position points.
        model2 = GPT(cfg, seed=1)
        opt2 = AdamW(list(reversed(list(model2.parameters()))), lr=1e-3)
        load_training_state(model2, opt2, path)
        for got, want in zip(opt2._m, saved_m):
            np.testing.assert_array_equal(got, want)

    def test_moment_shape_mismatch_rejected(self, tmp_path):
        """A checkpoint whose adam_m:: array shape disagrees with the
        parameter is refused, not silently broadcast."""
        cfg = tiny_cfg()
        model, opt = serial_pair(cfg)
        path = tmp_path / "state.npz"
        save_training_state(model, opt, path)
        arrays = verify_checkpoint(path)
        name = next(
            k for k in arrays if k.startswith("adam_m::") and arrays[k].ndim >= 1
        )
        arrays[name] = arrays[name][..., :-1]
        _atomic_savez(path, arrays)
        with pytest.raises(ValueError, match="shape mismatch"):
            load_training_state(model, opt, path)


class TestCheckpointRing:
    def make_pair(self, grid=None):
        cfg = tiny_cfg()
        if grid is None:
            model = GPT(cfg, seed=0)
        else:
            model = ParallelGPT(Grid4D(grid), cfg, seed=0)
        opt = AdamW(model.parameters(), lr=1e-3)
        return model, opt

    def test_keeps_last_k_and_prunes(self, tmp_path):
        model, opt = self.make_pair()
        ring = CheckpointRing(tmp_path, keep=2)
        for step in (0, 1, 2, 3):
            ring.save(model, opt, step)
        assert ring.steps() == [2, 3]
        assert ring.stats["pruned"] == 2

    def test_falls_back_to_newest_verifying(self, tmp_path):
        """Corrupt the newest checkpoint: restore must skip it and use
        the next-newest that verifies, not die and not trust garbage."""
        cfg = tiny_cfg()
        model, opt = self.make_pair()
        ring = CheckpointRing(tmp_path, keep=3)
        take_steps(model, opt, n=1, seed=0)
        ring.save(model, opt, 1)
        state_at_1 = {n: p.data.copy() for n, p in model.named_parameters()}
        take_steps(model, opt, n=1, seed=1)
        ring.save(model, opt, 2)

        # Silent corruption of the newest file.
        newest = ring.path_for(2)
        raw = bytearray(newest.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        newest.write_bytes(bytes(raw))

        model2, opt2 = self.make_pair()
        step = ring.restore(model2, opt2)
        assert step == 1
        assert ring.stats["skipped_corrupt"] == 1
        for name, p in model2.named_parameters():
            np.testing.assert_array_equal(p.data, state_at_1[name])

    def test_defense_disabled_plain_load_accepts_corruption(self, tmp_path):
        """The zip container's own CRC only covers raw byte flips; a
        corruption that re-writes the file *consistently* (buggy
        copy/repack, truncated-then-padded array — modeled here by
        re-saving a mutated array) sails through plain ``np.load``.
        Only the manifest's independent per-array CRC catches it."""
        model, opt = self.make_pair()
        ring = CheckpointRing(tmp_path, keep=2)
        ring.save(model, opt, 1)
        newest = ring.path_for(1)
        with np.load(newest) as data:
            saved = {k: data[k] for k in data.files}
        victim = next(k for k in saved if k.startswith("param::"))
        corrupted = dict(saved)
        corrupted[victim] = saved[victim] + 1e-3  # silent value drift
        np.savez(newest, **corrupted)  # consistent re-pack, stale manifest
        with np.load(newest) as data:
            loaded = {k: data[k] for k in data.files}  # no error raised
        assert loaded  # plain np.load happily returned corrupted arrays
        with pytest.raises(CheckpointCorruptionError, match="CRC32"):
            verify_checkpoint(newest)

    def test_nothing_verifies_raises(self, tmp_path):
        model, opt = self.make_pair()
        ring = CheckpointRing(tmp_path, keep=2)
        ring.save(model, opt, 1)
        p = ring.path_for(1)
        p.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointCorruptionError, match="no checkpoint"):
            ring.restore(model, opt)

    def test_ring_restores_across_grids(self, tmp_path):
        """The ring stores the canonical layout: a checkpoint written by
        an 8-rank grid restores onto a 4-rank grid (and serial)."""
        model, opt = self.make_pair(GridConfig(2, 2, 2, 1))
        ring = CheckpointRing(tmp_path, keep=2)
        ring.save(model, opt, 5)
        serial_ref = model.gather_state_to_serial().state_dict()

        small, sopt = self.make_pair(GridConfig(1, 2, 2, 1))
        assert ring.restore(small, sopt) == 5
        got = small.gather_state_to_serial().state_dict()
        for name in serial_ref:
            np.testing.assert_array_equal(got[name], serial_ref[name])

        ser, ser_opt = self.make_pair()
        assert ring.restore(ser, ser_opt) == 5
        for name, p in ser.named_parameters():
            np.testing.assert_array_equal(p.data, serial_ref[name])
