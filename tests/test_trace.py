"""Tests for the simulator's timeline tracing."""

import pytest

from repro.cluster import FRONTIER
from repro.config import GPTConfig
from repro.core import GridConfig
from repro.simulate import OverlapFlags, Timeline, TimelineEvent, simulate_iteration


def small_cfg():
    return GPTConfig(name="tr", num_layers=2, hidden_size=2048, num_heads=16)


class TestTimeline:
    def test_event_validation(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.add("compute", "bad", 2.0, 1.0)

    def test_busy_time_and_makespan(self):
        tl = Timeline()
        tl.add("compute", "a", 0.0, 1.0)
        tl.add("compute", "b", 2.0, 3.0)
        tl.add("comm.z", "c", 0.5, 2.5)
        assert tl.busy_time("compute") == 2.0
        assert tl.makespan() == 3.0
        assert Timeline().makespan() == 0.0

    def test_overlap_seconds(self):
        tl = Timeline()
        tl.add("compute", "a", 0.0, 2.0)
        tl.add("comm.z", "c", 1.0, 3.0)  # 1s hidden
        assert tl.overlap_seconds() == pytest.approx(1.0)

    def test_no_overlap_validator(self):
        tl = Timeline()
        tl.add("compute", "a", 0.0, 2.0)
        tl.add("compute", "b", 1.0, 3.0)
        assert not tl.validate_no_stream_overlap()

    def test_render(self):
        tl = Timeline()
        tl.add("compute", "a", 0.0, 1.0)
        out = tl.render(width=20)
        assert "compute" in out and "#" in out
        assert Timeline().render() == "(empty timeline)"

    def test_event_duration(self):
        e = TimelineEvent("compute", "x", 1.0, 2.5)
        assert e.duration == 1.5


class TestTracedSimulation:
    def test_streams_never_self_overlap(self):
        """Every stream of the simulated GPU executes serially."""
        for flags in (OverlapFlags.none(), OverlapFlags.all()):
            tl = Timeline()
            simulate_iteration(
                small_cfg(), 32, GridConfig(2, 2, 2, 2), FRONTIER,
                overlap=flags, trace=tl,
            )
            assert tl.events
            assert tl.validate_no_stream_overlap()

    def test_trace_accounts_for_total_time(self):
        """The trace's makespan equals the (pre-jitter) iteration time."""
        tl = Timeline()
        r = simulate_iteration(
            small_cfg(), 32, GridConfig(2, 1, 4, 2), FRONTIER,
            overlap=OverlapFlags.all(), trace=tl, noise=0.0,
        )
        assert tl.makespan() == pytest.approx(r.total_time, rel=1e-9)

    def test_compute_busy_matches_compute_time(self):
        tl = Timeline()
        r = simulate_iteration(
            small_cfg(), 32, GridConfig(2, 2, 2, 1), FRONTIER,
            trace=tl, noise=0.0,
        )
        assert tl.busy_time("compute") == pytest.approx(
            r.compute_time, rel=1e-9
        )

    def test_overlap_flags_increase_hidden_comm(self):
        cfg = small_cfg()
        tl_off = Timeline()
        simulate_iteration(
            cfg, 64, GridConfig(1, 1, 8, 8), FRONTIER,
            overlap=OverlapFlags.none(), trace=tl_off, noise=0.0,
        )
        tl_on = Timeline()
        simulate_iteration(
            cfg, 64, GridConfig(1, 1, 8, 8), FRONTIER,
            overlap=OverlapFlags.all(), trace=tl_on, noise=0.0,
        )
        assert tl_on.overlap_seconds() > tl_off.overlap_seconds()
