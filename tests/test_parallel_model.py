"""End-to-end verification of the 4D-parallel GPT.

The central claims: for any 4D grid configuration, the parallel model
computes the same logits, the same loss, and the same parameter
gradients as the serial reference — including transposed layers, the
distributed LayerNorm, head-split attention, the Z-sharded weights, and
the vocab-parallel loss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPTConfig
from repro.core import (
    Grid4D,
    GridConfig,
    ParallelGPT,
    ParallelLayerNorm,
    ParallelLinear,
    axonn_init,
    permute_qkv_columns,
    vocab_parallel_cross_entropy,
)
from repro.nn import GPT
from repro.runtime import CommTracer, ProcessGroup
from repro.tensor import Tensor
from repro.tensor import functional as F


def tiny_config(**kw) -> GPTConfig:
    defaults = dict(
        name="tiny",
        num_layers=2,
        hidden_size=24,
        num_heads=4,
        seq_len=10,
        vocab_size=32,
    )
    defaults.update(kw)
    return GPTConfig(**defaults)


def batch_for(cfg, b, s=None, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, cfg.vocab_size, (b, s or cfg.seq_len))


class TestParallelLinear:
    @pytest.mark.parametrize("gx,gy,gz", [(1, 1, 1), (2, 1, 1), (1, 2, 1), (1, 1, 2), (2, 2, 2)])
    @pytest.mark.parametrize("transposed", [False, True])
    def test_matches_serial_linear(self, gx, gy, gz, transposed):
        rng = np.random.default_rng(0)
        in_f, out_f = 8 * max(gx, gy) * gz, 4 * gx * gy
        grid = Grid4D(GridConfig(gx, gy, gz))
        layer = ParallelLinear(grid, in_f, out_f, transposed=transposed, rng=rng)
        W = rng.standard_normal((in_f, out_f))
        b = rng.standard_normal(out_f)
        layer.load_full_weight(W, b)
        np.testing.assert_allclose(layer.full_weight(), W, rtol=1e-14)

        x = rng.standard_normal((2 * gz, in_f))
        # Shard the input per the layer's expected layout.
        from repro.core import shard_input

        x_np = shard_input(x, grid, transposed=transposed)
        x_parts = {r: Tensor(v, requires_grad=True) for r, v in x_np.items()}
        out = layer.forward(x_parts)

        expect = x @ W + b
        # Check every rank's block against the reference.
        c = grid.config
        n_col = c.gy if transposed else c.gx
        cb = out_f // n_col
        rb = x.shape[0] // c.gz
        for r, t in out.items():
            xx, yy, zz, _ = grid.coords_of(r)
            i = yy if transposed else xx
            block = expect[zz * rb : (zz + 1) * rb, i * cb : (i + 1) * cb]
            np.testing.assert_allclose(t.data, block, rtol=1e-10, atol=1e-12)

    def test_gradients_match_serial(self):
        """Loss = sum(out); dW and dx must equal the serial gradients."""
        rng = np.random.default_rng(1)
        gx, gy, gz = 2, 2, 2
        in_f, out_f = 16, 8
        grid = Grid4D(GridConfig(gx, gy, gz))
        layer = ParallelLinear(grid, in_f, out_f, rng=rng)
        W = rng.standard_normal((in_f, out_f))
        bias = rng.standard_normal(out_f)
        layer.load_full_weight(W, bias)
        x = rng.standard_normal((4, in_f))

        from repro.core import shard_input

        x_parts = {
            r: Tensor(v, requires_grad=True)
            for r, v in shard_input(x, grid).items()
        }
        out = layer.forward(x_parts)
        # Sum each distinct output block once (use y=0 replicas).
        total = None
        for z in range(gz):
            for i in range(gx):
                t = out[grid.rank_of(i, 0, z)].sum()
                total = t if total is None else total + t
        total.backward()

        # Serial reference.
        xt = Tensor(x, requires_grad=True)
        Wt = Tensor(W, requires_grad=True)
        bt = Tensor(bias, requires_grad=True)
        (xt @ Wt + bt).sum().backward()

        # Reassembled parallel weight gradient.
        dW = np.zeros_like(W)
        rb, cb = layer.in_block, layer.out_block
        for (xx, yy, zz), p in layer.weight_shards.items():
            j, i = (yy, xx)
            r0 = j * rb + zz * layer.shard_rows
            dW[r0 : r0 + layer.shard_rows, i * cb : (i + 1) * cb] = p.grad
        np.testing.assert_allclose(dW, Wt.grad, rtol=1e-10, atol=1e-12)

        # Bias gradients.
        db = np.concatenate(
            [layer.bias_shards[i].grad for i in range(gx)]
        )
        np.testing.assert_allclose(db, bt.grad, rtol=1e-10, atol=1e-12)

        # Input gradient: each X replica is a distinct leaf holding the
        # *partial* gradient (line 11 of Algorithm 1); the sum over X
        # replicas is the all-reduce of line 12.  (Inside a full network
        # that sum happens automatically at the producing collective.)
        for z in range(gz):
            for j in range(gy):
                g = sum(
                    x_parts[grid.rank_of(i, j, z)].grad for i in range(gx)
                )
                blk = xt.grad[z * 2 : (z + 1) * 2, j * 8 : (j + 1) * 8]
                np.testing.assert_allclose(g, blk, rtol=1e-10, atol=1e-12)

    def test_divisibility_validation(self):
        grid = Grid4D(GridConfig(2, 2, 2))
        with pytest.raises(ValueError):
            ParallelLinear(grid, 10, 8)  # 10 % (2*2) != 0
        with pytest.raises(ValueError):
            ParallelLinear(grid, 16, 7)  # 7 % 2 != 0

    def test_load_shape_validation(self):
        grid = Grid4D(GridConfig(1, 1, 1))
        layer = ParallelLinear(grid, 4, 4)
        with pytest.raises(ValueError):
            layer.load_full_weight(np.zeros((3, 3)))


class TestParallelLayerNorm:
    @pytest.mark.parametrize("gy", [1, 2, 3])
    def test_matches_serial_layernorm(self, gy):
        rng = np.random.default_rng(0)
        h = 12
        grid = Grid4D(GridConfig(1, gy, 1))
        ln = ParallelLayerNorm(grid, h, feature_axis="y")
        w = rng.standard_normal(h)
        b = rng.standard_normal(h)
        ln.load_full(w, b)
        x = rng.standard_normal((3, h))
        parts = {
            grid.rank_of(0, j, 0): Tensor(
                x[:, j * (h // gy) : (j + 1) * (h // gy)], requires_grad=True
            )
            for j in range(gy)
        }
        out = ln.forward(parts)
        ref = F.layer_norm(Tensor(x), Tensor(w), Tensor(b)).data
        got = np.concatenate(
            [out[grid.rank_of(0, j, 0)].data for j in range(gy)], axis=1
        )
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)

    def test_bad_axis(self):
        grid = Grid4D(GridConfig(1, 1, 1))
        with pytest.raises(ValueError):
            ParallelLayerNorm(grid, 8, feature_axis="z")


class TestVocabParallelLoss:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_serial_cross_entropy(self, p):
        rng = np.random.default_rng(0)
        b, s, v = 2, 5, 16
        logits = rng.standard_normal((b, s, v))
        targets = rng.integers(0, v, (b, s))
        weights = np.full((b, s), 1.0 / (b * s))
        group = ProcessGroup(tuple(range(p)))
        parts = [
            Tensor(logits[..., i * (v // p) : (i + 1) * (v // p)], requires_grad=True)
            for i in range(p)
        ]
        loss = vocab_parallel_cross_entropy(parts, group, targets, weights)
        ref = F.cross_entropy(Tensor(logits), targets)
        assert loss.item() == pytest.approx(ref.item(), rel=1e-12)

    def test_gradient_matches_serial(self):
        rng = np.random.default_rng(1)
        b, s, v, p = 2, 3, 8, 2
        logits = rng.standard_normal((b, s, v))
        targets = rng.integers(0, v, (b, s))
        weights = np.full((b, s), 1.0 / (b * s))
        group = ProcessGroup((0, 1))
        parts = [
            Tensor(logits[..., i * 4 : (i + 1) * 4], requires_grad=True)
            for i in range(p)
        ]
        vocab_parallel_cross_entropy(parts, group, targets, weights).backward()
        ref = Tensor(logits, requires_grad=True)
        F.cross_entropy(ref, targets).backward()
        got = np.concatenate([t.grad for t in parts], axis=-1)
        np.testing.assert_allclose(got, ref.grad, rtol=1e-10, atol=1e-12)

    def test_masked_weights(self):
        rng = np.random.default_rng(2)
        b, s, v = 1, 4, 8
        logits = rng.standard_normal((b, s, v))
        targets = rng.integers(0, v, (b, s))
        mask = np.array([[1.0, 0.0, 1.0, 0.0]])
        weights = mask / mask.sum()
        group = ProcessGroup((0,))
        loss = vocab_parallel_cross_entropy(
            [Tensor(logits)], group, targets, weights
        )
        ref = F.cross_entropy(Tensor(logits), targets, loss_mask=mask)
        assert loss.item() == pytest.approx(ref.item(), rel=1e-12)


class TestQKVPermutation:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        W = rng.standard_normal((6, 24))
        fw = permute_qkv_columns(W, gx=2, hidden=8)
        back = permute_qkv_columns(fw, gx=2, hidden=8, inverse=True)
        np.testing.assert_array_equal(back, W)

    def test_identity_when_gx_1(self):
        W = np.arange(24.0).reshape(2, 12)
        np.testing.assert_array_equal(permute_qkv_columns(W, 1, 4), W)

    def test_shard_contains_own_heads(self):
        h, gx = 8, 2
        W = np.arange(3 * h)[None, :].astype(float)  # cols labeled 0..23
        p = permute_qkv_columns(W, gx, h)
        # Shard 0 = first 12 cols = [q0..3, k0..3 (8..11), v0..3 (16..19)]
        np.testing.assert_array_equal(
            p[0, :12], [0, 1, 2, 3, 8, 9, 10, 11, 16, 17, 18, 19]
        )


GRID_CASES = [
    (1, 1, 1, 1),
    (2, 1, 1, 1),  # Megatron-degenerate
    (1, 2, 1, 1),
    (1, 1, 2, 1),  # FSDP-degenerate
    (1, 1, 1, 2),  # pure data parallel
    (2, 2, 1, 1),
    (2, 1, 2, 1),
    (1, 2, 2, 1),
    (2, 2, 2, 1),
    (2, 2, 2, 2),  # full 4D
]


class TestParallelGPTEquivalence:
    @pytest.mark.parametrize("gx,gy,gz,gd", GRID_CASES)
    def test_logits_match_serial(self, gx, gy, gz, gd):
        cfg = tiny_config()
        serial = GPT(cfg, seed=3)
        grid = Grid4D(GridConfig(gx, gy, gz, gd))
        par = ParallelGPT.from_serial(serial, grid)
        ids = batch_for(cfg, b=2 * gz * gd, s=6, seed=1)
        ref = serial(ids).data
        got = par(ids).data
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-10)

    @pytest.mark.parametrize("gx,gy,gz,gd", GRID_CASES)
    def test_loss_matches_serial(self, gx, gy, gz, gd):
        cfg = tiny_config()
        serial = GPT(cfg, seed=3)
        grid = Grid4D(GridConfig(gx, gy, gz, gd))
        par = ParallelGPT.from_serial(serial, grid)
        ids = batch_for(cfg, b=2 * gz * gd, s=6, seed=2)
        assert par.loss(ids).item() == pytest.approx(
            serial.loss(ids).item(), rel=1e-10
        )

    def test_gradients_match_serial_full_4d(self):
        """The decisive test: every parameter gradient of the 4D model,
        reassembled, equals the serial gradient."""
        cfg = tiny_config()
        serial = GPT(cfg, seed=5)
        grid = Grid4D(GridConfig(2, 2, 2, 1))
        par = ParallelGPT.from_serial(serial, grid)
        ids = batch_for(cfg, b=4, s=6, seed=3)

        serial.loss(ids).backward()
        par.loss(ids).backward()

        gx, h = 2, cfg.hidden_size
        # Embeddings (shared tables).
        np.testing.assert_allclose(
            par.wte.weight.grad, serial.wte.weight.grad, rtol=1e-8, atol=1e-10
        )
        np.testing.assert_allclose(
            par.wpe.weight.grad, serial.wpe.weight.grad, rtol=1e-8, atol=1e-10
        )
        for pblk, sblk in zip(par.blocks, serial.blocks):
            # QKV (undo the column permutation on the reassembled grad).
            dqkv = np.zeros((h, 3 * h))
            lin = pblk.qkv
            rb, cb = lin.in_block, lin.out_block
            for (xx, yy, zz), p in lin.weight_shards.items():
                j, i = yy, xx
                r0 = j * rb + zz * lin.shard_rows
                dqkv[r0 : r0 + lin.shard_rows, i * cb : (i + 1) * cb] = p.grad
            dqkv = permute_qkv_columns(dqkv, gx, h, inverse=True)
            np.testing.assert_allclose(
                dqkv, sblk.attn.qkv.weight.grad, rtol=1e-8, atol=1e-10
            )
            # MLP fc2 (transposed orientation).
            lin = pblk.fc2
            dW = np.zeros((cfg.ffn_hidden, h))
            rb, cb = lin.in_block, lin.out_block
            for (xx, yy, zz), p in lin.weight_shards.items():
                j, i = xx, yy  # transposed: row block = x, col block = y
                r0 = j * rb + zz * lin.shard_rows
                dW[r0 : r0 + lin.shard_rows, i * cb : (i + 1) * cb] = p.grad
            np.testing.assert_allclose(
                dW, sblk.mlp.fc2.weight.grad, rtol=1e-8, atol=1e-10
            )
            # LayerNorm shards.
            dln = np.concatenate(
                [pblk.ln1.weight_shards[i].grad for i in sorted(pblk.ln1.weight_shards)]
            )
            np.testing.assert_allclose(
                dln, sblk.ln1.weight.grad, rtol=1e-8, atol=1e-10
            )

    def test_training_steps_stay_equivalent(self):
        """Three SGD steps on both models keep losses identical."""
        from repro.nn import SGD

        cfg = tiny_config(num_layers=1)
        serial = GPT(cfg, seed=7)
        grid = Grid4D(GridConfig(2, 1, 2, 1))
        par = ParallelGPT.from_serial(serial, grid)
        ids = batch_for(cfg, b=4, s=6, seed=4)
        s_opt = SGD(serial.parameters(), lr=0.05)
        p_opt = SGD(par.parameters(), lr=0.05)
        for _ in range(3):
            sl = serial.loss(ids)
            serial.zero_grad()
            sl.backward()
            s_opt.step()
            pl = par.loss(ids)
            par.zero_grad()
            pl.backward()
            p_opt.step()
            assert pl.item() == pytest.approx(sl.item(), rel=1e-9)

    def test_validation_errors(self):
        cfg = tiny_config()
        with pytest.raises(ValueError):  # heads 4 not divisible by gx 3
            ParallelGPT(Grid4D(GridConfig(3, 1, 1)), cfg)
        grid = Grid4D(GridConfig(1, 1, 2))
        par = ParallelGPT(grid, cfg)
        with pytest.raises(ValueError):  # batch 3 not divisible by gz 2
            par.loss(batch_for(cfg, b=3, s=4))

    def test_vocab_divisibility(self):
        cfg = tiny_config(vocab_size=30)  # 30 % 4 != 0
        with pytest.raises(ValueError):
            ParallelGPT(Grid4D(GridConfig(4, 1, 1)), cfg)

    def test_goldfish_mask_equivalence(self):
        cfg = tiny_config()
        serial = GPT(cfg, seed=9)
        grid = Grid4D(GridConfig(2, 2, 1, 1))
        par = ParallelGPT.from_serial(serial, grid)
        ids = batch_for(cfg, b=2, s=8, seed=5)
        rng = np.random.default_rng(0)
        mask = (rng.random(ids.shape) > 0.3).astype(float)
        assert par.loss(ids, loss_mask=mask).item() == pytest.approx(
            serial.loss(ids, loss_mask=mask).item(), rel=1e-10
        )

    def test_gather_state_roundtrip(self):
        cfg = tiny_config(num_layers=1)
        serial = GPT(cfg, seed=11)
        grid = Grid4D(GridConfig(2, 2, 2))
        par = ParallelGPT.from_serial(serial, grid)
        back = par.gather_state_to_serial()
        for (n1, p1), (n2, p2) in zip(
            serial.named_parameters(), back.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_allclose(p1.data, p2.data, rtol=1e-14)


class TestFacade:
    def test_init_and_parallelize(self):
        ctx = axonn_init(2, 1, 2, 1)
        cfg = tiny_config()
        model = ctx.parallelize(cfg)
        ids = batch_for(cfg, b=2, s=5)
        assert np.isfinite(model.loss(ids).item())

    def test_init_with_machine_placement(self):
        ctx = axonn_init(2, 2, 2, 1, machine="frontier")
        assert ctx.placement is not None
        assert ctx.placement.num_gpus == 8

    def test_grid_mismatch_rejected(self):
        from repro.cluster import FRONTIER, Placement

        with pytest.raises(ValueError):
            Grid4D(GridConfig(2, 2, 2), placement=Placement(FRONTIER, 16))


class TestVocabParallelEmbedding:
    def test_matches_full_table_lookup(self):
        from repro.core import VocabParallelEmbedding

        rng = np.random.default_rng(0)
        group = ProcessGroup((0, 1, 2, 3))
        emb = VocabParallelEmbedding(group, 32, 8, rng=rng)
        table = rng.standard_normal((32, 8))
        emb.load_full(table)
        np.testing.assert_array_equal(emb.full_table(), table)

        ids = rng.integers(0, 32, (3, 5))
        outs = emb.forward(ids)
        for t in outs:
            np.testing.assert_allclose(t.data, table[ids], rtol=1e-12)

    def test_gradients_land_on_owning_shards_only(self):
        from repro.core import VocabParallelEmbedding

        rng = np.random.default_rng(1)
        group = ProcessGroup((0, 1))
        emb = VocabParallelEmbedding(group, 8, 4, rng=rng)
        ids = np.array([[0, 1, 2]])  # all ids in shard 0's range [0, 4)
        outs = emb.forward(ids)
        outs[0].sum().backward()
        assert np.abs(emb.shards[0].grad).sum() > 0
        np.testing.assert_array_equal(emb.shards[1].grad, 0.0)

    def test_gradient_matches_serial_embedding(self):
        from repro.core import VocabParallelEmbedding
        from repro.tensor import functional as F

        rng = np.random.default_rng(2)
        group = ProcessGroup((0, 1))
        emb = VocabParallelEmbedding(group, 16, 6, rng=rng)
        table = rng.standard_normal((16, 6))
        emb.load_full(table)
        ids = rng.integers(0, 16, (4, 3))

        ref = Tensor(table, requires_grad=True)
        (F.embedding(ref, ids) * F.embedding(ref, ids)).sum().backward()

        outs = emb.forward(ids)
        (outs[0] * outs[0]).sum().backward()
        got = np.concatenate([emb.shards[0].grad, emb.shards[1].grad])
        np.testing.assert_allclose(got, ref.grad, rtol=1e-10, atol=1e-12)

    def test_comm_pattern(self):
        from repro.core import VocabParallelEmbedding

        group = ProcessGroup((0, 1))
        tr = CommTracer()
        emb = VocabParallelEmbedding(
            group, 8, 4, rng=np.random.default_rng(0), tracer=tr
        )
        emb.forward(np.array([[1, 5]]))
        assert [r.tag for r in tr.records] == ["vocab_embed.AR"]

    def test_validation(self):
        from repro.core import VocabParallelEmbedding

        group = ProcessGroup((0, 1, 2))
        with pytest.raises(ValueError):
            VocabParallelEmbedding(group, 8, 4)  # 8 % 3 != 0
        emb = VocabParallelEmbedding(ProcessGroup((0, 1)), 8, 4)
        with pytest.raises(IndexError):
            emb.forward(np.array([9]))
        with pytest.raises(ValueError):
            emb.load_full(np.zeros((4, 4)))

    def test_memory_sharding(self):
        """The point of the scheme: per-rank table state shrinks by p."""
        from repro.core import VocabParallelEmbedding

        small = VocabParallelEmbedding(ProcessGroup((0,)), 64, 8)
        big = VocabParallelEmbedding(ProcessGroup((0, 1, 2, 3)), 64, 8)
        assert big.shards[0].size == small.shards[0].size // 4


class TestGridShapeFuzz:
    """Property-based sweep over (Gx, Gy, Gz, Gdata): on every sampled
    shape a parallel training step must equal the serial step AND leave a
    validator-clean collective schedule.  Seeded/derandomized so CI runs
    the same ~30 shapes every time."""

    @staticmethod
    def _step(model, opt, ids):
        loss = model.loss(ids)
        model.zero_grad()
        loss.backward()
        opt.step()
        return loss.item()

    @given(
        gx=st.sampled_from([1, 2]),
        gy=st.sampled_from([1, 2]),
        gz=st.sampled_from([1, 2, 3]),
        gd=st.sampled_from([1, 2]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_parallel_step_matches_serial_and_schedule_clean(
        self, gx, gy, gz, gd, seed
    ):
        from repro.nn import SGD
        from repro.runtime import validate_schedule

        cfg = tiny_config(num_layers=1)
        serial = GPT(cfg, seed=seed % 13)
        tracer = CommTracer()
        grid = Grid4D(GridConfig(gx, gy, gz, gd), tracer=tracer)
        par = ParallelGPT.from_serial(serial, grid)
        ids = batch_for(cfg, b=2 * gz * gd, s=6, seed=seed)

        s_opt = SGD(serial.parameters(), lr=0.1)
        p_opt = SGD(par.parameters(), lr=0.1)
        # Two steps: the second loss only matches if the first step's
        # gradients (hence every collective) were correct.
        for _ in range(2):
            sl = self._step(serial, s_opt, ids)
            pl = self._step(par, p_opt, ids)
            assert pl == pytest.approx(sl, rel=1e-9)

        violations = validate_schedule(tracer)
        assert violations == [], "\n".join(str(v) for v in violations)
