"""Tests for the discrete-event performance simulator.

Beyond unit behaviour, these tests pin down the paper's qualitative
performance claims: overlap optimizations reduce batch time (most at
large scale), kernel tuning rescues the GPT-320B TN pathology, the
auto-configured 4D grid beats the Megatron+HSDP baseline, and weak/strong
scaling efficiencies land in the paper's ranges.
"""

import pytest

from repro.cluster import ALPS, FRONTIER, PERLMUTTER
from repro.config import get_model
from repro.core import Grid4D, GridConfig
from repro.cluster import Placement
from repro.simulate import (
    OverlapFlags,
    baseline_config,
    best_configuration,
    compute_metrics,
    default_global_batch,
    group_timings,
    measured_group_bandwidth,
    run_point,
    simulate_iteration,
    strong_scaling_efficiency,
    time_to_solution_days,
    weak_scaling_efficiency,
)
from repro.simulate.network_sim import congestion_factor


class TestNetworkSim:
    def test_size_one_axis_free(self):
        grid = Grid4D(GridConfig(1, 1, 8, 1))
        placement = Placement(FRONTIER, 8)
        t = measured_group_bandwidth(grid, placement, "x")
        assert t.bandwidth == float("inf")
        assert t.group_size == 1

    def test_in_node_group_uses_fabric(self):
        grid = Grid4D(GridConfig(2, 1, 1, 4))
        placement = Placement(FRONTIER, 8)
        t = measured_group_bandwidth(grid, placement, "x")
        # X pairs (0,1), (2,3)... share MI250X dies.
        assert t.bandwidth == FRONTIER.same_die_bw
        assert t.latency < 1e-5

    def test_spanning_group_is_slower(self):
        grid = Grid4D(GridConfig(8, 1, 1, 2))
        placement = Placement(FRONTIER, 16)
        tx = measured_group_bandwidth(grid, placement, "x")
        td = measured_group_bandwidth(grid, placement, "data")
        assert td.bandwidth < tx.bandwidth
        assert td.latency > tx.latency

    def test_group_timings_covers_axes(self):
        grid = Grid4D(GridConfig(2, 2, 2, 2))
        placement = Placement(PERLMUTTER, 16)
        t = group_timings(grid, placement)
        assert set(t) == {"x", "y", "z", "data", "seq"}

    def test_congestion_grows_with_job_size(self):
        assert congestion_factor(1) == 1.0
        assert congestion_factor(64) < congestion_factor(1024)
        assert congestion_factor(4096) > 1.5


class TestSimulateIteration:
    def test_basic_result_sanity(self):
        cfg = get_model("GPT-5B")
        r = simulate_iteration(cfg, 64, GridConfig(2, 2, 2, 4), FRONTIER)
        assert r.total_time > 0
        assert r.compute_time > 0
        assert r.total_time >= r.compute_time
        assert r.exposed_comm_time == pytest.approx(
            r.total_time - r.compute_time
        )

    def test_batch_divisibility(self):
        cfg = get_model("GPT-5B")
        with pytest.raises(ValueError):
            simulate_iteration(cfg, 10, GridConfig(1, 1, 1, 4), FRONTIER)

    def test_deterministic(self):
        cfg = get_model("GPT-10B")
        c = GridConfig(2, 1, 4, 4)
        a = simulate_iteration(cfg, 64, c, FRONTIER)
        b = simulate_iteration(cfg, 64, c, FRONTIER)
        assert a.total_time == b.total_time

    def test_overlap_never_hurts(self):
        cfg = get_model("GPT-20B")
        c = GridConfig(8, 1, 4, 8)
        base = simulate_iteration(cfg, 512, c, FRONTIER, overlap=OverlapFlags.none())
        for fl in (
            OverlapFlags(True, False, False),
            OverlapFlags(True, True, False),
            OverlapFlags.all(),
        ):
            r = simulate_iteration(cfg, 512, c, FRONTIER, overlap=fl)
            assert r.total_time <= base.total_time + 1e-9
            assert r.compute_time == pytest.approx(base.compute_time)

    def test_overlap_gains_grow_with_scale(self):
        """Section VII-A: the overlap benefit is largest for the largest
        model/scale (communication grows with scale)."""

        def gain(model, gpus):
            cfg = get_model(model)
            c, _ = best_configuration(
                cfg, default_global_batch(gpus), gpus, FRONTIER,
                overlap=OverlapFlags.none(), kernel_tuning=False,
            )
            b = default_global_batch(gpus)
            off = simulate_iteration(cfg, b, c, FRONTIER, overlap=OverlapFlags.none())
            on = simulate_iteration(cfg, b, c, FRONTIER, overlap=OverlapFlags.all())
            return 1.0 - on.total_time / off.total_time

        assert gain("GPT-80B", 8192) > gain("GPT-20B", 2048) - 0.02
        assert gain("GPT-80B", 8192) > 0.05  # visible double-digit-ish gain

    def test_kernel_tuning_large_gain_for_320b(self):
        """Section V-C: GPT-320B's TN pathology costs ~2x of compute;
        tuning recovers it."""
        cfg = get_model("GPT-320B")
        # A modest tensor split keeps the local dW output dims at the
        # pathological hidden size (paper: 30.1 s -> 13.19 s of compute).
        c = GridConfig(2, 1, 16, 1024)
        off = simulate_iteration(cfg, 8192, c, FRONTIER, kernel_tuning=False)
        on = simulate_iteration(cfg, 8192, c, FRONTIER, kernel_tuning=True)
        assert on.compute_time < off.compute_time * 0.6
        assert on.tuning_speedup > 2.0
        # Absolute compute lands near the paper's numbers.
        assert 20 < off.compute_time < 45
        assert 8 < on.compute_time < 20

    def test_kernel_tuning_modest_for_small_models(self):
        cfg = get_model("GPT-20B")
        c = GridConfig(8, 1, 4, 16)
        off = simulate_iteration(cfg, 1024, c, FRONTIER, kernel_tuning=False)
        on = simulate_iteration(cfg, 1024, c, FRONTIER, kernel_tuning=True)
        assert 1.0 <= off.compute_time / on.compute_time < 1.15

    def test_checkpointing_costs_compute(self):
        cfg = get_model("GPT-5B")
        c = GridConfig(2, 2, 2, 2)
        with_ck = simulate_iteration(cfg, 32, c, FRONTIER)
        without = simulate_iteration(
            cfg, 32, c, FRONTIER, activation_checkpointing=False
        )
        assert with_ck.compute_time > without.compute_time * 1.2


class TestBaselineAndAutoConfig:
    def test_baseline_is_megatron_plus_hsdp(self):
        cfg = get_model("GPT-80B")
        bc = baseline_config(cfg, 8192, FRONTIER)
        assert bc.gx == FRONTIER.gpus_per_node
        assert bc.gy == 1
        assert bc.total == 8192

    def test_autoconfig_beats_baseline_fig7(self):
        """Fig. 7: perf-model configs + tuning + overlap beat the
        Megatron+HSDP baseline by double digits on Frontier."""
        cfg = get_model("GPT-80B")
        batch = 8192
        base = simulate_iteration(
            cfg, batch, baseline_config(cfg, 8192, FRONTIER), FRONTIER,
            overlap=OverlapFlags.none(), kernel_tuning=False,
        )
        _, best = best_configuration(cfg, batch, 8192, FRONTIER)
        improvement = 1.0 - best.total_time / base.total_time
        assert 0.10 < improvement < 0.60  # paper: 13-45% + overlap

    def test_best_configuration_no_feasible(self):
        cfg = get_model("GPT-640B")
        with pytest.raises(ValueError):
            # 640B cannot fit on 8 A100-40GB GPUs in any arrangement.
            best_configuration(cfg, 8, 8, PERLMUTTER)


class TestScalingStudies:
    def test_weak_scaling_efficiency_range_frontier(self):
        """Fig. 6 / Table III shape: high efficiency through 8k GCDs, a
        drop at 16k, a cliff at 32k (53.5% in the paper)."""
        p512 = run_point("GPT-5B", 512, FRONTIER)
        p8k = run_point("GPT-80B", 8192, FRONTIER)
        p32k = run_point("GPT-320B", 32768, FRONTIER)
        eff8 = weak_scaling_efficiency(p512.metrics, p8k.metrics)
        eff32 = weak_scaling_efficiency(p512.metrics, p32k.metrics)
        assert eff8 > 0.80
        assert 0.35 < eff32 < 0.75
        assert eff32 < eff8

    def test_paper_headline_flops(self):
        """1.381 Eflop/s on 32,768 GCDs (22% of peak): shape check —
        we accept 1.1-1.7 Eflop/s and 18-27%."""
        p = run_point("GPT-320B", 32768, FRONTIER)
        assert 1.1e18 < p.metrics.total_flops < 1.7e18
        assert 18 < p.metrics.pct_advertised_peak < 27

    def test_alps_highest_absolute_flops(self):
        """Alps at 6,144 H100s delivers the highest sustained flop/s of
        the three systems (1.423 Eflop/s in the paper)."""
        alps = run_point("GPT-60B", 6144, ALPS)
        perl = run_point("GPT-40B", 4096, PERLMUTTER)
        assert alps.metrics.total_flops > perl.metrics.total_flops
        assert alps.metrics.total_flops > 1.0e18

    def test_perlmutter_50pct_range(self):
        """Perlmutter sustains ~50%+ of advertised peak (Section VII-B)."""
        p = run_point("GPT-10B", 1024, PERLMUTTER)
        assert p.metrics.pct_advertised_peak > 40

    def test_strong_scaling_efficiency_metric(self):
        assert strong_scaling_efficiency(100.0, 128, 13.0, 1024) == pytest.approx(
            (100 / 13) / 8
        )

    def test_time_to_solution_fig9_shape(self):
        """Fig. 9: GPT-80B on 128 GCDs takes years; on 8,192 GCDs weeks."""
        cfg = get_model("GPT-80B")
        batch = 8192  # the paper's 16.8M-token batch
        small = run_point("GPT-80B", 128, FRONTIER, global_batch=batch)
        big = run_point("GPT-80B", 8192, FRONTIER, global_batch=batch)
        t_small = time_to_solution_days(cfg, batch, small.result.total_time, 2e12)
        t_big = time_to_solution_days(cfg, batch, big.result.total_time, 2e12)
        assert t_small > 600  # years on 128 GCDs (paper: 50 months)
        assert t_big < 40  # weeks at 8k GCDs (paper: 25.5 days)
        eff = strong_scaling_efficiency(
            small.result.total_time, 128, big.result.total_time, 8192
        )
        assert eff > 0.5

    def test_compute_metrics_consistency(self):
        cfg = get_model("GPT-5B")
        m = compute_metrics(cfg, 64, 512, FRONTIER, batch_time=2.0)
        assert m.pflops == pytest.approx(m.total_flops / 1e15)
        assert m.pct_empirical_peak > m.pct_advertised_peak

    def test_default_global_batch_schedule(self):
        assert default_global_batch(512) == 1024
        assert default_global_batch(4096) == 8192
        assert default_global_batch(32768) == 8192  # capped at 16.8M tokens


class TestVariability:
    """Section VI-B's run-to-run variability, modeled."""

    def test_repeated_runs_vary(self):
        from repro.simulate import variability_study

        cfg = get_model("GPT-10B")
        stats = variability_study(
            cfg, GridConfig(2, 1, 8, 4), FRONTIER, 128, runs=8
        )
        assert len(stats.times) == 8
        assert stats.max > stats.min  # real spread
        assert 0 < stats.spread_pct < 15  # a few percent, like the paper
        assert stats.min <= stats.mean <= stats.max

    def test_variability_deterministic(self):
        from repro.simulate import variability_study

        cfg = get_model("GPT-10B")
        a = variability_study(cfg, GridConfig(2, 1, 8, 4), FRONTIER, 128, runs=4)
        b = variability_study(cfg, GridConfig(2, 1, 8, 4), FRONTIER, 128, runs=4)
        assert a.times == b.times

    def test_validation(self):
        from repro.simulate import variability_study

        with pytest.raises(ValueError):
            variability_study(
                get_model("GPT-10B"), GridConfig(1, 1, 8, 1), FRONTIER, 8, runs=1
            )

    def test_measurement_protocol(self):
        """10 iterations, discard 2 warmups, average 8 (Section VI-C)."""
        from repro.simulate import measured_batch_time

        cfg = get_model("GPT-10B")
        t = measured_batch_time(cfg, GridConfig(2, 1, 8, 4), FRONTIER, 128)
        one = simulate_iteration(cfg, 128, GridConfig(2, 1, 8, 4), FRONTIER)
        # The averaged measurement is close to a single draw but not
        # identical (different jitter draws).
        assert t == pytest.approx(one.total_time, rel=0.1)
        with pytest.raises(ValueError):
            measured_batch_time(
                cfg, GridConfig(2, 1, 8, 4), FRONTIER, 128,
                iterations=2, warmup=2,
            )


class TestPlacementImpact:
    def test_block_placement_beats_round_robin(self):
        """The Section V-B hierarchy assumption quantified: scattering
        the inner process groups across nodes (round-robin ranks) slows
        the same configuration down substantially."""
        cfg = get_model("GPT-20B")
        c = GridConfig(8, 1, 4, 16)
        block = simulate_iteration(
            cfg, 1024, c, FRONTIER, overlap=OverlapFlags.all(), kernel_tuning=True
        )
        rr = simulate_iteration(
            cfg, 1024, c, FRONTIER, overlap=OverlapFlags.all(),
            kernel_tuning=True, placement_strategy="round_robin",
        )
        assert rr.total_time > block.total_time * 1.3

    def test_unknown_strategy_propagates(self):
        cfg = get_model("GPT-5B")
        with pytest.raises(ValueError):
            simulate_iteration(
                cfg, 32, GridConfig(2, 2, 2, 4), FRONTIER,
                placement_strategy="snake",
            )
