"""Property-based tests over the performance and memory models.

Monotonicity and scaling laws that must hold for any input — the
guardrails that keep the simulator physically sensible as it evolves.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ALPS, FRONTIER, PERLMUTTER
from repro.config import get_model
from repro.core import GridConfig
from repro.kernels import GemmModel
from repro.perfmodel import all_reduce_time, layer_comm_time, LayerShape
from repro.pipeline import bubble_fraction
from repro.simulate import estimate_memory

MACHINES = [PERLMUTTER, FRONTIER, ALPS]


class TestGemmModelProperties:
    @given(
        m=st.sampled_from([256, 1024, 4096, 16384]),
        k=st.sampled_from([256, 1024, 4096]),
        n=st.sampled_from([256, 1024, 4096]),
        mi=st.integers(0, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_efficiency_bounded_and_time_positive(self, m, k, n, mi):
        g = GemmModel(MACHINES[mi])
        for mode in ("NN", "NT", "TN"):
            eff = g.efficiency(m, k, n, mode)
            assert 0 < eff <= MACHINES[mi].gpu.gemm_efficiency + 1e-12
            assert g.time(m, k, n, mode) > 0

    @given(
        m=st.sampled_from([512, 2048, 8192]),
        mi=st.integers(0, 2),
    )
    @settings(max_examples=20, deadline=None)
    def test_bigger_problems_are_never_less_efficient(self, m, mi):
        g = GemmModel(MACHINES[mi])
        assert g.efficiency(2 * m, m, m) >= g.efficiency(m, m, m)

    @given(mi=st.integers(0, 2), m=st.sampled_from([1024, 4096]))
    @settings(max_examples=12, deadline=None)
    def test_nn_is_the_fastest_mode(self, mi, m):
        g = GemmModel(MACHINES[mi])
        nn = g.time(m, m, m, "NN")
        assert g.time(m, m, m, "NT") >= nn
        assert g.time(m, m, m, "TN") >= nn


class TestCommModelProperties:
    @given(
        buf=st.floats(1e3, 1e10),
        p=st.integers(2, 128),
        beta=st.floats(1e9, 1e12),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_reduce_monotone_in_bandwidth(self, buf, p, beta):
        assert all_reduce_time(buf, p, beta) > all_reduce_time(
            buf, p, 2 * beta
        )

    @given(
        m=st.sampled_from([1024, 8192]),
        k=st.sampled_from([1024, 4096]),
        n=st.sampled_from([1024, 4096]),
        gz=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_more_z_sharding_means_less_gather_time_per_rank(self, m, k, n, gz):
        """The AG_z term shrinks with G_z (each rank gathers the same
        block from smaller shards): Eq. 1's (Gz-1)/Gz growth is bounded
        while the shard shrinks by 1/Gz."""
        betas = {"x": 1e11, "y": 1e11, "z": 1e11, "data": 1e11}
        t1 = layer_comm_time(LayerShape("l", m, k, n), GridConfig(1, 1, gz, 1), betas)
        t2 = layer_comm_time(
            LayerShape("l", m, k, n), GridConfig(1, 1, 2 * gz, 1), betas
        )
        if gz == 1:
            # No sharding, no Z traffic at all.
            assert t1.ag_z == t1.rs_z == 0.0
        else:
            # Beyond that, total Z traffic saturates: (Gz-1)/Gz growth
            # against a 1/Gz shard keeps doubling within ~2x.
            assert t2.ag_z + t2.rs_z <= 2 * (t1.ag_z + t1.rs_z) + 1e-12

    @given(
        gx=st.sampled_from([1, 2, 4]),
        gy=st.sampled_from([1, 2, 4]),
        m=st.sampled_from([2048, 8192]),
    )
    @settings(max_examples=20, deadline=None)
    def test_no_tensor_axes_no_activation_traffic(self, gx, gy, m):
        betas = {"x": 1e11, "y": 1e11, "z": 1e11, "data": 1e11}
        bd = layer_comm_time(
            LayerShape("l", m, 4096, 4096), GridConfig(1, 1, 4, 4), betas
        )
        assert bd.ar_x == 0.0 and bd.ar_y == 0.0
        bd2 = layer_comm_time(
            LayerShape("l", m, 4096, 4096), GridConfig(gx, gy, 4, 4), betas
        )
        if gx > 1:
            assert bd2.ar_x > 0
        if gy > 1:
            assert bd2.ar_y > 0


class TestMemoryModelProperties:
    @given(
        gz=st.sampled_from([1, 2, 4, 8]),
        batch=st.sampled_from([8, 16, 32]),
    )
    @settings(max_examples=20, deadline=None)
    def test_total_memory_monotone_in_batch(self, gz, batch):
        cfg = get_model("GPT-5B")
        grid = GridConfig(2, 1, gz, 1)
        a = estimate_memory(cfg, grid, batch)
        b = estimate_memory(cfg, grid, 2 * batch)
        assert b.total > a.total
        assert b.model_state == a.model_state  # state is batch-free

    @given(
        gx=st.sampled_from([1, 2, 4]),
        gy=st.sampled_from([1, 2]),
        gz=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=20, deadline=None)
    def test_state_scales_inversely_with_tensor_degree(self, gx, gy, gz):
        cfg = get_model("GPT-10B")
        base = estimate_memory(cfg, GridConfig(1, 1, 1, 1), 4)
        sharded = estimate_memory(cfg, GridConfig(gx, gy, gz, 1), max(4, gz))
        expect = base.model_state / (gx * gy * gz)
        assert sharded.model_state == pytest.approx(expect)

    @given(batch=st.sampled_from([4, 8, 16]))
    @settings(max_examples=10, deadline=None)
    def test_checkpointing_never_increases_memory(self, batch):
        cfg = get_model("GPT-5B")
        grid = GridConfig(2, 2, 2, 1)
        with_ck = estimate_memory(cfg, grid, batch, checkpointing=True)
        without = estimate_memory(cfg, grid, batch, checkpointing=False)
        assert with_ck.total <= without.total


class TestPipelineProperties:
    @given(
        m=st.integers(1, 64),
        s=st.integers(1, 16),
        v=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_bubble_fraction_bounds_and_monotonicity(self, m, s, v):
        f = bubble_fraction(m, s, v)
        assert 0.0 <= f < 1.0
        # More microbatches and more virtual stages both shrink it.
        assert bubble_fraction(2 * m, s, v) <= f
        assert bubble_fraction(m, s, v + 1) <= f
        # One stage has no bubble.
        assert bubble_fraction(m, 1, v) == 0.0
