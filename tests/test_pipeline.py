"""Tests for the pipeline-parallelism substrate (the baseline family)."""

import numpy as np
import pytest

from repro.cluster import FRONTIER, PERLMUTTER
from repro.config import GPTConfig, get_model
from repro.nn import GPT, SGD
from repro.pipeline import (
    P2PTracer,
    PipelineConfig,
    PipelineGPT,
    partition_layers,
    pipeline_memory_factor,
    simulate_pipeline_iteration,
)


def tiny_config(layers=4):
    return GPTConfig(
        name="t", num_layers=layers, hidden_size=16, num_heads=4,
        seq_len=10, vocab_size=32,
    )


class TestPartition:
    def test_balanced_even(self):
        plan = partition_layers(8, 4)
        assert plan.ranges == ((0, 2), (2, 4), (4, 6), (6, 8))
        assert plan.max_layers_per_stage() == 2

    def test_balanced_uneven(self):
        plan = partition_layers(7, 3)
        assert plan.ranges == ((0, 3), (3, 5), (5, 7))
        assert plan.max_layers_per_stage() == 3

    def test_stage_of(self):
        plan = partition_layers(6, 2)
        assert plan.stage_of(0) == 0
        assert plan.stage_of(5) == 1
        with pytest.raises(ValueError):
            plan.stage_of(6)

    def test_layers_in(self):
        plan = partition_layers(6, 3)
        assert list(plan.layers_in(1)) == [2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_layers(4, 0)
        with pytest.raises(ValueError):
            partition_layers(2, 3)


class TestFunctionalPipeline:
    @pytest.mark.parametrize("stages,micro", [(1, 1), (2, 1), (2, 2), (4, 4)])
    def test_matches_serial_loss_and_grads(self, stages, micro):
        cfg = tiny_config(layers=4)
        ids = np.random.default_rng(0).integers(0, cfg.vocab_size, (4, 8))

        serial = GPT(cfg, seed=3)
        ref_loss = serial.loss(ids)
        ref_loss.backward()
        ref_grads = {n: p.grad.copy() for n, p in serial.named_parameters()}

        piped_model = GPT(cfg, seed=3)
        pipe = PipelineGPT(piped_model, partition_layers(4, stages))
        loss = pipe.loss(ids, num_microbatches=micro)

        assert loss == pytest.approx(ref_loss.item(), rel=1e-10)
        for n, p in piped_model.named_parameters():
            np.testing.assert_allclose(
                p.grad, ref_grads[n], rtol=1e-9, atol=1e-11
            )

    def test_p2p_pattern(self):
        """m microbatches over S stages: m*(S-1) activation sends and as
        many gradient sends, each of microbatch-activation size."""
        cfg = tiny_config(layers=4)
        model = GPT(cfg, seed=0)
        tracer = P2PTracer()
        pipe = PipelineGPT(model, partition_layers(4, 4), tracer=tracer)
        ids = np.random.default_rng(1).integers(0, cfg.vocab_size, (4, 8))
        pipe.loss(ids, num_microbatches=2)
        assert tracer.count("activation") == 2 * 3
        assert tracer.count("gradient") == 2 * 3
        # Activation bytes: (micro, seq-1, hidden) float64.
        expect = 2 * 7 * 16 * 8
        assert all(
            r.nbytes == expect for r in tracer.records
        )

    def test_p2p_schedule_is_validator_clean(self):
        """Validation-enabled mode: the stage-boundary send/recv schedule
        passes the SPMD validator (pairing, sizes, no deadlock cycle)."""
        from repro.runtime import CommTracer, validate_schedule

        cfg = tiny_config(layers=4)
        model = GPT(cfg, seed=0)
        comm = CommTracer()
        pipe = PipelineGPT(model, partition_layers(4, 4), comm_tracer=comm)
        ids = np.random.default_rng(1).integers(0, cfg.vocab_size, (4, 8))
        pipe.loss(ids, num_microbatches=2)
        # 2 microbatches * 3 boundaries, activations + gradients, each a
        # send event and a recv event.
        assert len(comm.events) == 2 * (2 * 3) * 2
        violations = validate_schedule(comm)
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_training_step_equivalence(self):
        """One SGD step through the pipeline == one serial step."""
        cfg = tiny_config(layers=2)
        ids = np.random.default_rng(2).integers(0, cfg.vocab_size, (4, 8))
        serial = GPT(cfg, seed=9)
        s_opt = SGD(serial.parameters(), lr=0.1)
        serial.loss(ids).backward()
        s_opt.step()

        model = GPT(cfg, seed=9)
        p_opt = SGD(model.parameters(), lr=0.1)
        PipelineGPT(model, partition_layers(2, 2)).loss(ids, num_microbatches=2)
        p_opt.step()

        for (n, p), (_, q) in zip(
            serial.named_parameters(), model.named_parameters()
        ):
            np.testing.assert_allclose(p.data, q.data, rtol=1e-9, atol=1e-12)

    def test_validation(self):
        cfg = tiny_config(layers=4)
        model = GPT(cfg, seed=0)
        with pytest.raises(ValueError):
            PipelineGPT(model, partition_layers(3, 3))  # wrong layer count
        pipe = PipelineGPT(model, partition_layers(4, 2))
        with pytest.raises(ValueError):
            pipe.loss(np.zeros((3, 8), dtype=int), num_microbatches=2)
        with pytest.raises(TypeError):
            PipelineGPT(model, "not a plan")


class TestPipelineSchedule:
    def test_bubble_fraction_formula(self):
        """Bubble/(total - dp - p2p) == (S-1)/(m+S-1)."""
        cfg = get_model("GPT-20B")
        pc = PipelineConfig(tp=8, pp=8, dp=4)
        r = simulate_pipeline_iteration(cfg, 256, pc, FRONTIER, num_microbatches=8)
        slot_total = r.total_time - r.dp_time - r.p2p_time
        assert r.bubble_time / slot_total == pytest.approx(
            (8 - 1) / (8 + 8 - 1), rel=1e-6
        )

    def test_more_microbatches_shrink_bubble(self):
        cfg = get_model("GPT-20B")
        pc = PipelineConfig(tp=8, pp=4, dp=4)
        small = simulate_pipeline_iteration(cfg, 256, pc, FRONTIER, num_microbatches=4)
        big = simulate_pipeline_iteration(cfg, 256, pc, FRONTIER, num_microbatches=16)
        assert big.bubble_fraction < small.bubble_fraction
        assert big.total_time < small.total_time

    def test_tp_confined_to_node(self):
        cfg = get_model("GPT-20B")
        with pytest.raises(ValueError):
            simulate_pipeline_iteration(
                cfg, 64, PipelineConfig(tp=16, pp=2, dp=1), FRONTIER
            )
        # 16-way TP is fine where nodes are bigger... nowhere here.
        with pytest.raises(ValueError):
            simulate_pipeline_iteration(
                cfg, 64, PipelineConfig(tp=8, pp=2, dp=1), PERLMUTTER
            )

    def test_uneven_stages_charged_at_slowest(self):
        """24 layers over 5 stages -> the 5-layer stage sets the slot, so
        the uneven run costs more than the even 24/4 split per GPU."""
        cfg = get_model("GPT-5B")  # 24 layers
        uneven = simulate_pipeline_iteration(
            cfg, 40, PipelineConfig(tp=4, pp=5, dp=1), PERLMUTTER,
            num_microbatches=10,
        )
        even = simulate_pipeline_iteration(
            cfg, 40, PipelineConfig(tp=4, pp=4, dp=1), PERLMUTTER,
            num_microbatches=10,
        )
        # Per-slot compute: 5 layers (ceil 24/5) vs 6 layers (24/4).
        assert uneven.compute_time < even.compute_time
        # But the bubble is deeper with more stages.
        assert uneven.bubble_fraction > even.bubble_fraction

    def test_microbatch_divisibility(self):
        cfg = get_model("GPT-5B")
        with pytest.raises(ValueError):
            simulate_pipeline_iteration(
                cfg, 64, PipelineConfig(tp=4, pp=5, dp=1), PERLMUTTER,
                num_microbatches=20,  # 64 % 20 != 0
            )

    def test_memory_factor(self):
        assert pipeline_memory_factor(32, 8, "gpipe") == 32
        assert pipeline_memory_factor(32, 8, "1f1b") == 8
        assert pipeline_memory_factor(4, 8, "1f1b") == 4
        with pytest.raises(ValueError):
            pipeline_memory_factor(4, 2, "interleaved?")

    def test_result_components_sum_sensibly(self):
        cfg = get_model("GPT-40B")
        pc = PipelineConfig(tp=8, pp=2, dp=8)
        r = simulate_pipeline_iteration(cfg, 512, pc, FRONTIER, num_microbatches=16)
        assert r.total_time > r.compute_time
        assert r.bubble_time > 0
        assert r.tp_comm_time > 0
        assert r.dp_time > 0
        assert 0 < r.bubble_fraction < 0.5


class TestInterleavedSchedule:
    def test_bubble_fraction_closed_form(self):
        from repro.pipeline import bubble_fraction

        assert bubble_fraction(8, 8) == pytest.approx(7 / 15)
        assert bubble_fraction(8, 8, virtual_stages=2) == pytest.approx(7 / 23)
        assert bubble_fraction(32, 1) == 0.0
        with pytest.raises(ValueError):
            bubble_fraction(0, 4)

    def test_interleaving_shrinks_bubble(self):
        """Narayanan et al.'s trick: v virtual chunks per device divide
        the fill/drain bubble by ~v, at the cost of v-fold p2p volume."""
        cfg = get_model("GPT-20B")  # 32 layers
        pc = PipelineConfig(tp=8, pp=8, dp=4)
        plain = simulate_pipeline_iteration(
            cfg, 256, pc, FRONTIER, num_microbatches=8
        )
        inter = simulate_pipeline_iteration(
            cfg, 256, pc, FRONTIER, num_microbatches=8, virtual_stages=2
        )
        assert inter.bubble_time < plain.bubble_time * 0.7
        assert inter.p2p_time == pytest.approx(2 * plain.p2p_time)
        assert inter.total_time < plain.total_time

    def test_interleaved_memory_factor(self):
        from repro.pipeline import pipeline_memory_factor

        assert pipeline_memory_factor(32, 8, "interleaved") == 8

    def test_validation(self):
        cfg = get_model("GPT-20B")
        with pytest.raises(ValueError):
            simulate_pipeline_iteration(
                cfg, 64, PipelineConfig(tp=8, pp=2, dp=1), FRONTIER,
                virtual_stages=0,
            )


class TestCongestionOwnership:
    """The dragonfly congestion charge is owned by
    :func:`repro.simulate.network_sim.span_link` — the pipeline model
    must apply it exactly once, and never to single-node jobs."""

    def test_single_node_job_uses_intra_node_fabric(self):
        """Regression: an 8-GPU Frontier job fits on one node, so its
        data-parallel all-reduce and p2p transfers run over Infinity
        Fabric (50 GB/s), not the NIC aggregate (100 GB/s).  The old
        model charged inter-node bandwidth and NIC latency."""
        from repro.perfmodel.ring import all_reduce_time
        from repro.pipeline.schedule import BF16

        cfg = get_model("GPT-5B")
        pc = PipelineConfig(tp=2, pp=2, dp=2)
        assert FRONTIER.num_nodes(pc.total) == 1
        r = simulate_pipeline_iteration(cfg, 64, pc, FRONTIER, num_microbatches=8)
        grad_bytes = cfg.num_parameters() / 2 / pc.tp * BF16  # 2 stages
        expected_dp = all_reduce_time(grad_bytes, pc.dp, FRONTIER.intra_node_bw)
        assert r.dp_time == pytest.approx(expected_dp)
        # Pre-fix value (inter-node bw, 2x faster on Frontier) must NOT
        # be what we get.
        wrong_dp = all_reduce_time(grad_bytes, pc.dp, FRONTIER.inter_node_bw)
        assert r.dp_time != pytest.approx(wrong_dp)

    def test_multi_node_job_charges_congestion_once(self):
        """Cross-check: dp/p2p times equal a manual composition from
        span_link — i.e. exactly one congestion division, no more."""
        from repro.perfmodel.ring import all_reduce_time
        from repro.pipeline.schedule import BF16
        from repro.simulate.network_sim import span_link

        cfg = get_model("GPT-20B")
        pc = PipelineConfig(tp=8, pp=4, dp=4)  # 128 GPUs = 16 nodes
        nodes = FRONTIER.num_nodes(pc.total)
        assert nodes > 1
        r = simulate_pipeline_iteration(cfg, 128, pc, FRONTIER, num_microbatches=8)

        bw, lat = span_link(FRONTIER, nodes)
        grad_bytes = (
            cfg.num_parameters() * 8 / cfg.num_layers / pc.tp * BF16
        )  # 8 layers on the largest stage
        assert r.dp_time == pytest.approx(all_reduce_time(grad_bytes, pc.dp, bw))

        micro = 128 // pc.dp // 8
        act_bytes = micro * cfg.seq_len * cfg.hidden_size * BF16
        expected_p2p = 2 * (pc.pp - 1) * (act_bytes / bw + lat)
        assert r.p2p_time == pytest.approx(expected_p2p)

    def test_moe_all_to_all_single_vs_multi_node(self):
        from repro.moe.schedule import all_to_all_time
        from repro.simulate.network_sim import span_link

        payload = 1 << 20
        t_intra = all_to_all_time(payload, 8, FRONTIER, num_nodes=1)
        t_inter = all_to_all_time(payload, 8, FRONTIER, num_nodes=8)
        # Frontier: intra 50 GB/s vs congested inter ~100 GB/s, but NIC
        # latency dominates small payloads; just pin the composition.
        for t, nodes in ((t_intra, 1), (t_inter, 8)):
            beta, alpha = span_link(FRONTIER, nodes)
            assert t == pytest.approx(7 / 8 * payload / beta + 7 * alpha)
