"""Tests for the unified planning / autotuning API (``repro.autotune``).

Covers the PR 9 acceptance criteria: seed-determinism of the search,
the winner never being slower than the pre-PR-9 top-k procedure,
agreement with the paper's hand-tuned weak-scaling shapes, the typed
``NoFeasibleConfigError``, the deprecation shims on the old positional
signatures, the facade exports, and the ``plan --optimize`` CLI.
"""

import json
import warnings

import pytest

import repro
from repro.autotune import (
    ALL_OVERLAP_COMBOS,
    AutotuneReport,
    NoFeasibleConfigError,
    PlanRequest,
    SearchSpace,
    TunedJobConfig,
    autotune,
)
from repro.config import get_model
from repro.kernels import clear_tuner_cache
from repro.perfmodel import rank_configurations
from repro.perfmodel.hierarchical import clear_choice_cache
from repro.simulate import best_configuration, clear_caches, run_point
from repro.simulate.executor import OverlapFlags


def _clear_all_caches():
    clear_caches()
    clear_tuner_cache()
    clear_choice_cache()


class TestPlanRequest:
    def test_resolves_names(self):
        req = PlanRequest(model="GPT-5B", num_gpus=64, machine="perlmutter")
        assert req.resolved_model().name == "GPT-5B"
        assert req.resolved_machine().name == "perlmutter"
        assert req.resolved_batch() > 0
        assert req.resolved_overlap() == OverlapFlags.all()

    def test_accepts_objects(self):
        cfg = get_model("GPT-5B")
        req = PlanRequest(model=cfg, num_gpus=64, machine="frontier",
                          global_batch=128)
        assert req.resolved_model() is cfg
        assert req.resolved_batch() == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanRequest(model="GPT-5B", num_gpus=0, machine="perlmutter")
        with pytest.raises(ValueError):
            PlanRequest(model="GPT-5B", num_gpus=64, machine="perlmutter",
                        top_k=0)
        with pytest.raises(ValueError):
            PlanRequest(model="GPT-5B", num_gpus=64, machine="perlmutter",
                        engine="gpu")
        with pytest.raises(ValueError):
            PlanRequest(model="GPT-5B", num_gpus=64, machine="perlmutter",
                        collective_algo="ring")

    def test_replace(self):
        req = PlanRequest(model="GPT-5B", num_gpus=64, machine="perlmutter")
        req2 = req.replace(num_gpus=128)
        assert req2.num_gpus == 128
        assert req2.model == req.model


class TestSearchSpace:
    def test_default_space_covers_all_knobs(self):
        space = SearchSpace()
        assert space.overlap_flags == ALL_OVERLAP_COMBOS
        assert len(ALL_OVERLAP_COMBOS) == 8
        assert set(space.kernel_tuning) == {True, False}
        assert set(space.collective_algos) == {"flat", "hierarchical", "auto"}
        combos = space.combos()
        assert len(combos) == 8 * 2 * 3
        assert len(set(combos)) == len(combos)

    def test_pinned_replicates_request_knobs(self):
        req = PlanRequest(model="GPT-5B", num_gpus=64, machine="perlmutter",
                          top_k=7, kernel_tuning=False,
                          collective_algo="hierarchical")
        space = SearchSpace.pinned(req)
        assert space.prune_k == 7
        assert space.resolved_validate_k(req) == 7
        assert space.combos() == [
            (req.resolved_overlap(), False, "hierarchical")
        ]

    def test_reference_combo_is_most_optimistic(self):
        req = PlanRequest(model="GPT-5B", num_gpus=64, machine="perlmutter")
        overlap, tuned, algo = SearchSpace().reference_combo(req)
        assert overlap == OverlapFlags.all()
        assert tuned is True
        assert algo == "auto"


class TestAutotuneDeterminism:
    def test_bitwise_same_winner_across_runs(self):
        req = PlanRequest(model="GPT-5B", num_gpus=64, machine="perlmutter",
                          global_batch=128, top_k=4, seed=3)
        space = SearchSpace(prune_k=8, validate_k=4)
        _clear_all_caches()
        a = autotune(req, space)
        _clear_all_caches()
        b = autotune(req, space)
        assert a.winner.config == b.winner.config
        assert a.winner.simulated_time == b.winner.simulated_time
        assert a.winner.overlap == b.winner.overlap
        assert a.winner.collective_algo == b.winner.collective_algo
        assert [c.config for c in a.ranked] == [c.config for c in b.ranked]
        assert [c.best_time for c in a.ranked] == [c.best_time for c in b.ranked]

    def test_seed_changes_jitter_not_structure(self):
        req = PlanRequest(model="GPT-5B", num_gpus=64, machine="perlmutter",
                          global_batch=128, top_k=3)
        a = autotune(req, SearchSpace.pinned(req))
        b = autotune(req.replace(seed=17), SearchSpace.pinned(req))
        assert a.num_feasible == b.num_feasible
        assert a.winner.simulated_time != b.winner.simulated_time


class TestWinnerNeverSlower:
    GOLDEN = [
        ("GPT-5B", 64, "perlmutter", 128),
        ("GPT-5B", 128, "frontier", 256),
        ("GPT-10B", 256, "alps", 512),
    ]

    @pytest.mark.parametrize("model,gpus,machine,batch", GOLDEN)
    def test_full_space_beats_pr6_topk(self, model, gpus, machine, batch):
        req = PlanRequest(model=model, num_gpus=gpus, machine=machine,
                          global_batch=batch, top_k=5)
        with pytest.warns(DeprecationWarning):
            _, ref = best_configuration(
                get_model(model), batch, gpus, machine, 5
            )
        report = autotune(req, SearchSpace(prune_k=8, validate_k=5))
        assert report.winner.simulated_time <= ref.total_time

    def test_pinned_space_matches_pr6_bitwise(self):
        req = PlanRequest(model="GPT-5B", num_gpus=64, machine="perlmutter",
                          global_batch=128, top_k=5)
        with pytest.warns(DeprecationWarning):
            cfg, ref = best_configuration(
                get_model("GPT-5B"), 128, 64, "perlmutter", 5
            )
        report = autotune(req, SearchSpace.pinned(req))
        assert report.winner.config == cfg
        assert report.winner.simulated_time == ref.total_time


class TestHandTunedAgreement:
    """The autotuner must agree with the paper's §V-B procedure — the
    hand-tuned weak-scaling shapes — at the paper's own scales: never
    slower, and never claiming more than a modest win over them."""

    POINTS = [
        ("GPT-10B", 1024, "perlmutter"),
        ("GPT-20B", 1024, "frontier"),
        ("GPT-40B", 4096, "perlmutter"),
        ("GPT-40B", 4096, "frontier"),
    ]

    @pytest.mark.parametrize("model,gpus,machine", POINTS)
    def test_agreement_within_tolerance(self, model, gpus, machine):
        req = PlanRequest(model=model, num_gpus=gpus, machine=machine)
        ref = autotune(req, SearchSpace.pinned(req))
        report = autotune(req, SearchSpace(prune_k=16, validate_k=6))
        win = report.winner.simulated_time
        hand = ref.winner.simulated_time
        assert win <= hand
        # Tolerance: the full knob sweep may not beat the paper's
        # hand-tuned pick by more than 35% — a bigger gap would mean the
        # analytic model and the simulator disagree about the space.
        assert hand <= 1.35 * win
        # And the winning grid must be feasible at the paper's scale.
        assert report.winner.config.total == gpus


class TestNoFeasibleConfigError:
    def test_raises_with_reasons(self):
        req = PlanRequest(model="GPT-640B", num_gpus=8, machine="perlmutter",
                          global_batch=8)
        with pytest.raises(NoFeasibleConfigError) as exc:
            autotune(req)
        err = exc.value
        assert isinstance(err, ValueError)  # old handlers keep working
        assert err.reasons
        assert all(isinstance(v, str) and v for v in err.reasons.values())
        assert any("fit" in v for v in err.reasons.values())
        assert "no feasible" in str(err)

    def test_cli_prints_reasons(self, capsys):
        from repro.tools import plan

        rc = plan.main(["GPT-640B", "8", "perlmutter", "--batch", "8"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "no feasible configuration" in out
        assert "fit" in out

    def test_old_library_path_raises_same_error(self):
        with pytest.raises(NoFeasibleConfigError):
            with pytest.warns(DeprecationWarning):
                best_configuration(get_model("GPT-640B"), 8, 8, "perlmutter")


class TestDeprecationShims:
    def test_best_configuration_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="positional"):
            cfg, res = best_configuration(
                get_model("GPT-5B"), 128, 64, "perlmutter"
            )
        assert cfg.total == 64

    def test_run_point_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="positional"):
            pt = run_point("GPT-5B", 64, "perlmutter")
        assert pt.num_gpus == 64

    def test_rank_configurations_positional_extras_warn(self):
        cfg = get_model("GPT-5B")
        with pytest.warns(DeprecationWarning):
            ranked = rank_configurations(cfg, 128, 64, "perlmutter", None, 5)
        assert len(ranked) == 5

    def test_new_paths_do_not_warn(self):
        req = PlanRequest(model="GPT-5B", num_gpus=64, machine="perlmutter",
                          global_batch=128, top_k=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            best_configuration(req)
            run_point(req)
            rank_configurations(req)
            rank_configurations(get_model("GPT-5B"), 128, 64, "perlmutter")


class TestFacadeExports:
    def test_all_new_symbols_in_repro_all(self):
        for name in ("autotune", "PlanRequest", "SearchSpace",
                     "TunedJobConfig", "AutotuneReport",
                     "NoFeasibleConfigError"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_blessed_entry_point(self):
        report = repro.autotune(
            repro.PlanRequest(model="GPT-5B", num_gpus=64,
                              machine="perlmutter", global_batch=128,
                              top_k=3)
        )
        assert isinstance(report, AutotuneReport)
        assert isinstance(report.winner, TunedJobConfig)
        assert report.winner.simulated_time > 0

    def test_autotune_rejects_non_request(self):
        with pytest.raises(TypeError):
            autotune("GPT-5B")


class TestPlanOptimizeCLI:
    def test_optimize_end_to_end(self, capsys, tmp_path):
        from repro.tools import plan

        rc = plan.main([
            "GPT-5B", "64", "perlmutter", "--batch", "128",
            "--optimize", "--top", "4", "--prune-k", "8",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "winner:" in out
        assert "configs/s" in out
        bench = json.loads((tmp_path / "BENCH_autotune.json").read_text())
        m = bench["metrics"]
        assert m["autotune.winner_time_s"] <= m["autotune.rank1_sim_time_s"]
        assert m["autotune.num_simulations"] > 0
        assert m["autotune.configs_per_second"] > 0

    def test_optimize_deterministic_output(self, capsys):
        from repro.tools import plan

        argv = ["GPT-5B", "64", "perlmutter", "--batch", "128",
                "--optimize", "--top", "3", "--prune-k", "6"]
        _clear_all_caches()
        plan.main(argv)
        first = capsys.readouterr().out
        _clear_all_caches()
        plan.main(argv)
        second = capsys.readouterr().out
        # Identical modulo the wall-clock/rate line.
        strip = lambda s: [l for l in s.splitlines() if "configs/s" not in l]
        assert strip(first) == strip(second)


class TestSharedCLIFlags:
    CLIS = [
        ("plan", ["GPT-5B", "64", "perlmutter"]),
        ("sweep", ["strong", "GPT-5B", "perlmutter", "64"]),
        ("goodput_report", ["GPT-5B", "64"]),
        ("serve_report", ["GPT-5B", "4"]),
    ]

    @pytest.mark.parametrize("mod,_", CLIS)
    def test_help_lists_shared_flags(self, mod, _, capsys):
        import importlib

        main = importlib.import_module(f"repro.tools.{mod}").main
        argv = ["strong", "--help"] if mod == "sweep" else ["--help"]
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--engine", "--collective-algo", "--seed", "--out"):
            assert flag in out, f"{mod} missing {flag}"

    def test_plan_scalar_engine_matches_vectorized(self, capsys):
        from repro.tools import plan

        base = ["GPT-5B", "64", "perlmutter", "--batch", "128", "--top", "3"]
        assert plan.main(base + ["--engine", "scalar"]) == 0
        scalar = capsys.readouterr().out
        assert plan.main(base + ["--engine", "vectorized"]) == 0
        vector = capsys.readouterr().out
        assert scalar == vector

    def test_serve_report_algo_alias_still_accepted(self, capsys):
        from repro.tools import serve_report

        # The deprecated --algo spelling must land in the shared
        # collective_algo destination.
        rc = serve_report.main([
            "GPT-5B", "4", "--rates", "0.5", "--num-requests", "4",
            "--no-smoke", "--algo", "hierarchical",
        ])
        assert rc == 0
        assert "algo hierarchical" in capsys.readouterr().out
