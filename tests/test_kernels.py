"""Tests for the GEMM model, kernel autotuner, and FLOP accounting."""

import pytest

from repro.cluster import ALPS, FRONTIER, PERLMUTTER
from repro.config import get_model
from repro.kernels import (
    MODES,
    GemmModel,
    MatmulOp,
    flops_per_iteration,
    flops_per_token,
    percent_of_peak,
    sustained_flops,
    tune_matmuls,
)


class TestGemmModel:
    def test_large_nn_approaches_empirical_peak(self):
        g = GemmModel(PERLMUTTER)
        eff = g.efficiency(32768, 32768, 32768, "NN")
        # Section VI-C: 280/312 = 90% at 32768^2.
        assert eff == pytest.approx(PERLMUTTER.gpu.gemm_efficiency, rel=0.05)

    def test_small_matmuls_are_inefficient(self):
        g = GemmModel(PERLMUTTER)
        assert g.efficiency(128, 128, 128) < 0.2
        assert g.efficiency(8192, 8192, 8192) > 0.75

    def test_frontier_tn_pathology_at_gpt320b_scale(self):
        """The paper's headline: TN at hidden 16384 runs ~8x slower than
        NN (6% vs 55% of peak)."""
        g = GemmModel(FRONTIER)
        h = 16384
        m_batch = 4096
        # dW = I^T @ dO: an (h x m) @ (m x h) product -> output (h, h).
        tn = g.time(h, m_batch, h, "TN")
        nn = g.time(h, m_batch, h, "NN")
        assert tn / nn == pytest.approx(8.0, rel=0.05)

    def test_frontier_tn_mild_at_small_hidden(self):
        g = GemmModel(FRONTIER)
        ratio = g.time(7168, 16384, 7168, "TN") / g.time(7168, 16384, 7168, "NN")
        assert ratio < 1.3

    def test_cuda_platforms_have_mild_mode_gaps(self):
        for machine in (PERLMUTTER, ALPS):
            g = GemmModel(machine)
            for mode in MODES:
                ratio = g.time(8192, 16384, 8192, mode) / g.time(8192, 16384, 8192, "NN")
                assert ratio <= 1.2

    def test_time_scales_with_flops(self):
        g = GemmModel(ALPS)
        t1 = g.time(8192, 8192, 8192)
        t2 = g.time(16384, 8192, 8192)
        assert t2 > t1 * 1.8  # ~2x flops, slightly better efficiency

    def test_validation(self):
        g = GemmModel(PERLMUTTER)
        with pytest.raises(ValueError):
            g.time(0, 10, 10)
        with pytest.raises(ValueError):
            g.mode_factor("XX", 128, 128, 128)


class TestTuner:
    def test_tuner_fixes_frontier_tn(self):
        """The GPT-320B anecdote: tuning switches the TN weight-gradient
        GEMM to NN for a large speedup."""
        g = GemmModel(FRONTIER)
        ops = [MatmulOp("block.dW", m=16384, k=4096, n=16384, default_mode="TN")]
        plan = tune_matmuls(ops, g)
        assert plan.mode_for("block.dW") == "NN"
        # NN is ~8x faster; the relayout charge (5% of the *default* TN
        # time) caps the realized speedup at 1 / (1/8 + 0.05).
        assert plan.speedup > 5.0

    def test_tuner_keeps_good_defaults(self):
        g = GemmModel(PERLMUTTER)
        ops = [MatmulOp("fwd", 4096, 4096, 4096, "NN")]
        plan = tune_matmuls(ops, g)
        assert plan.mode_for("fwd") == "NN"
        assert plan.speedup == pytest.approx(1.0)

    def test_transpose_overhead_prevents_marginal_switches(self):
        """NT on Perlmutter is only 5% slower than NN; switching would
        pay a 5% relayout cost, so the tuner must keep NT."""
        g = GemmModel(PERLMUTTER)
        ops = [MatmulOp("dI", 4096, 4096, 4096, "NT")]
        plan = tune_matmuls(ops, g)
        assert plan.mode_for("dI") == "NT"

    def test_modest_gains_for_small_models_on_frontier(self):
        """Fig. 7: kernel tuning helps only 2-4% for models below the
        TN-pathology threshold."""
        g = GemmModel(FRONTIER)
        cfg = get_model("GPT-20B")  # hidden 7168 < 8192
        h = cfg.hidden_size
        m = 8 * cfg.seq_len
        ops = []
        for i in range(4):
            ops.append(MatmulOp(f"l{i}.fwd", m, h, 4 * h, "NN"))
            ops.append(MatmulOp(f"l{i}.dI", m, 4 * h, h, "NT"))
            ops.append(MatmulOp(f"l{i}.dW", h, m, 4 * h, "TN"))
        plan = tune_matmuls(ops, g)
        assert 1.0 <= plan.speedup < 1.15

    def test_overhead_relative_to_default_mode_not_nn(self):
        """Regression: with a TN-default op whose NN kernel is barely
        worth switching to, the relayout overhead must be charged
        relative to the *default* (TN) time.  The old code charged 5%
        of the (cheaper) NN time, understating the cost and switching:
        NN candidate = 9.32 + 0.05*9.32 = 9.79 < 9.8 = 0.98*default
        (switch), where the correct charge gives
        9.32 + 0.05*10.0 = 9.82 >= 9.8 (stay)."""

        class FixedTimes:
            _t = {"TN": 10.0, "NN": 9.32, "NT": 11.0}

            def time(self, m, k, n, mode="NN"):
                return self._t[mode]

        plan = tune_matmuls(
            [MatmulOp("dW", 256, 256, 256, default_mode="TN")], FixedTimes()
        )
        assert plan.mode_for("dW") == "TN"
        assert plan.tuned_times["dW"] == pytest.approx(10.0)

    def test_switched_op_pays_default_relative_overhead(self):
        """When the tuner does switch, the tuned time includes the
        relayout charge at 5% of the default-mode time."""

        class FixedTimes:
            _t = {"TN": 10.0, "NN": 1.0, "NT": 11.0}

            def time(self, m, k, n, mode="NN"):
                return self._t[mode]

        plan = tune_matmuls(
            [MatmulOp("dW", 256, 256, 256, default_mode="TN")], FixedTimes()
        )
        assert plan.mode_for("dW") == "NN"
        assert plan.tuned_times["dW"] == pytest.approx(1.0 + 0.05 * 10.0)
        assert plan.speedup == pytest.approx(10.0 / 1.5)

    def test_duplicate_names_rejected(self):
        g = GemmModel(FRONTIER)
        ops = [MatmulOp("a", 8, 8, 8), MatmulOp("a", 8, 8, 8)]
        with pytest.raises(ValueError):
            tune_matmuls(ops, g)


class TestFlops:
    def test_narayanan_formula_literal(self):
        cfg = get_model("GPT-5B")
        b, s, l, h, v = 8, 2048, 24, 4096, 51200
        expect = 96 * b * s * l * h * h * (1 + s / (6 * h) + v / (16 * l * h))
        assert flops_per_iteration(cfg, 8) == pytest.approx(expect)

    def test_no_checkpointing_coefficient(self):
        cfg = get_model("GPT-5B")
        assert flops_per_iteration(cfg, 4, checkpointing=False) == pytest.approx(
            flops_per_iteration(cfg, 4) * 72 / 96
        )

    def test_flops_per_token_consistent(self):
        cfg = get_model("GPT-10B")
        assert flops_per_token(cfg) * cfg.seq_len == pytest.approx(
            flops_per_iteration(cfg, 1)
        )

    def test_sustained_and_percent(self):
        cfg = get_model("GPT-5B")
        f = sustained_flops(cfg, 8, batch_time_s=2.0)
        assert f == pytest.approx(flops_per_iteration(cfg, 8) / 2.0)
        assert percent_of_peak(50.0, 100.0) == 50.0

    def test_validation(self):
        cfg = get_model("GPT-5B")
        with pytest.raises(ValueError):
            flops_per_iteration(cfg, 0)
        with pytest.raises(ValueError):
            sustained_flops(cfg, 8, 0.0)
        with pytest.raises(ValueError):
            percent_of_peak(1.0, 0.0)

    def test_bigger_models_need_more_flops_per_token(self):
        small = flops_per_token(get_model("GPT-5B"))
        big = flops_per_token(get_model("GPT-80B"))
        assert big > 10 * small
