"""Golden-trace regression: collective schedules pinned byte-for-byte.

Each golden file under ``tests/golden/`` is the canonical per-rank
communication schedule of one representative parallel configuration.
The tests replay the identical seeded program and require the canonical
JSON to match the checked-in golden exactly; on mismatch the failure
message carries a structural diff (which rank diverged, at which event)
rather than a JSON blob.  Intentional changes to the communication
pattern are made visible in review by regenerating:

    python -m repro.tools.regen_goldens
"""

import json

import pytest

from repro.runtime import normalized_schedule, schedule_diff, validate_schedule
from repro.tools.regen_goldens import (
    GOLDEN_SCENARIOS,
    build_schedule,
    golden_dir,
)

SCENARIOS = sorted(GOLDEN_SCENARIOS)


@pytest.mark.parametrize("name", SCENARIOS)
def test_golden_file_exists(name):
    assert (golden_dir() / f"{name}.json").is_file(), (
        f"missing golden trace for {name!r}; run "
        f"`python -m repro.tools.regen_goldens`"
    )


@pytest.mark.parametrize("name", SCENARIOS)
def test_schedule_matches_golden(name):
    current = build_schedule(name)
    golden = (golden_dir() / f"{name}.json").read_text()
    if current != golden:
        diff = schedule_diff(json.loads(golden), json.loads(current))
        pytest.fail(
            f"collective schedule for {name!r} drifted from golden.\n"
            f"{diff}\n"
            f"If intentional, regenerate with "
            f"`python -m repro.tools.regen_goldens`."
        )


@pytest.mark.parametrize("name", SCENARIOS)
def test_schedule_byte_stable_across_runs(name):
    assert build_schedule(name) == build_schedule(name)


@pytest.mark.parametrize("name", SCENARIOS)
def test_golden_schedule_is_validator_clean(name):
    """The goldens themselves must satisfy the SPMD invariants: the
    events are reconstructible from JSON and pass every check."""
    from repro.runtime import CommEvent

    doc = json.loads((golden_dir() / f"{name}.json").read_text())
    events = []
    for rank_s, evs in doc["ranks"].items():
        for d in evs:
            events.append(
                CommEvent(
                    rank=int(rank_s),
                    op=d["op"],
                    group=tuple(d["group"]),
                    dtype=d["dtype"],
                    count=d["count"],
                    tag=d["tag"],
                    peer=d.get("peer"),
                    root=d.get("root"),
                    splits=tuple(d["splits"]) if "splits" in d else None,
                    handle_id=d.get("handle_id"),
                )
            )
    assert validate_schedule(events) == []
    assert doc["num_events"] == len(events)


def test_normalized_schedule_shape():
    doc = json.loads(build_schedule("moe"))
    assert doc["version"] == 1
    assert set(doc) == {"version", "num_events", "ranks"}
    for evs in doc["ranks"].values():
        for d in evs:
            assert {"op", "group", "dtype", "count", "tag"} <= set(d)


def test_schedule_diff_reports_rank_and_position():
    a = json.loads(build_schedule("moe"))
    b = json.loads(build_schedule("moe"))
    assert schedule_diff(a, b) == "schedules identical"
    b["ranks"]["1"][0]["count"] = 12345
    out = schedule_diff(a, b)
    assert "rank 1" in out and "event 0" in out and "12345" in out
    del b["ranks"]["0"]
    assert "missing from current" in schedule_diff(a, b)
