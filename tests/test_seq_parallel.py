"""Sequence-parallel ring attention: correctness, bugfixes, planning.

Four claims under test:

1. **Ring == serial.** :func:`repro.nn.ring_causal_attention` composes
   per-shard online-softmax states into exactly the serial
   :func:`repro.nn.causal_attention` result — to 1e-12 for arbitrary
   inputs, *bitwise* for payloads whose arithmetic is exact — and the
   full 5D-parallel GPT trains identically to the serial reference for
   any ``G_seq``.
2. **Attention bugfixes hold.** The ``-inf`` mask fill preserves
   causality for extreme-magnitude float32 activations (the old finite
   ``-1e30`` fill provably does not), and the memoized
   :func:`repro.nn.causal_mask` builds each mask shape exactly once.
3. **The ring is visible.** Traced ``seq.ring_kv`` bytes equal the
   analytic :func:`repro.perfmodel.seq_ring_volumes`, and the schedule
   validator flags dropped or desynchronized ring messages.
4. **The planners agree.** Performance model and simulator pick the
   same side of the SP-vs-plain-TP crossover at the sweep endpoints on
   perlmutter and frontier, and the end-to-end autotuner reaches for
   ``G_seq > 1`` when long context makes classic 4D grids infeasible.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotune import (
    NoFeasibleConfigError,
    PlanRequest,
    SearchSpace,
    autotune,
)
from repro.cluster import get_machine
from repro.config import GPTConfig, get_model
from repro.core import Grid4D, GridConfig, ParallelGPT
from repro.nn import (
    GPT,
    RING_KV_TAG,
    causal_attention,
    causal_mask,
    ring_causal_attention,
    shard_sequence,
)
from repro.nn import transformer as transformer_mod
from repro.perfmodel import rank_configurations, seq_ring_volumes
from repro.runtime import (
    CommTimeoutError,
    CommTracer,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ProcessGroup,
    fault_scope,
    validate_schedule,
)
from repro.simulate import OverlapFlags, simulate_iteration
from repro.tensor import Tensor
from repro.tensor import functional as F


def tiny_config(**kw) -> GPTConfig:
    defaults = dict(
        name="tiny",
        num_layers=2,
        hidden_size=24,
        num_heads=4,
        seq_len=12,
        vocab_size=32,
    )
    defaults.update(kw)
    return GPTConfig(**defaults)


def batch_for(cfg, b, s=None, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, cfg.vocab_size, (b, s or cfg.seq_len))


def _ring_outputs(qd, kd, vd, num_heads, gs, tracer=None):
    """Run the ring on numpy q/k/v, returning (shard tensors, concat data)."""
    group = ProcessGroup(tuple(range(gs)))
    qs = [Tensor(a.copy(), requires_grad=True) for a in shard_sequence(qd, gs)]
    ks = [Tensor(a.copy(), requires_grad=True) for a in shard_sequence(kd, gs)]
    vs = [Tensor(a.copy(), requires_grad=True) for a in shard_sequence(vd, gs)]
    outs = ring_causal_attention(qs, ks, vs, num_heads, group, tracer=tracer)
    full = np.concatenate([o.data for o in outs], axis=1)
    return (qs, ks, vs), outs, full


class TestRingAttentionCore:
    """ring_causal_attention vs the serial causal_attention reference."""

    @pytest.mark.parametrize("gs", [1, 2, 3, 4, 6, 12])
    def test_forward_and_backward_match_serial(self, gs):
        """Every ring degree dividing S reproduces the serial attention
        output and the serial q/k/v gradients to 1e-12."""
        rng = np.random.default_rng(gs)
        b, s, h, nh = 2, 12, 24, 4
        qd, kd, vd = (rng.standard_normal((b, s, h)) for _ in range(3))
        w = rng.standard_normal((b, s, h))  # non-uniform upstream gradient

        q, k, v = (
            Tensor(a.copy(), requires_grad=True) for a in (qd, kd, vd)
        )
        ref = causal_attention(q, k, v, nh)
        (ref * Tensor(w)).sum().backward()

        shards, outs, full = _ring_outputs(qd, kd, vd, nh, gs)
        np.testing.assert_allclose(full, ref.data, rtol=0, atol=1e-12)

        loss = sum(
            (o * Tensor(ws)).sum()
            for o, ws in zip(outs, shard_sequence(w, gs))
        )
        loss.backward()
        qs, ks, vs = shards
        for serial_grad, shard_list in (
            (q.grad, qs), (k.grad, ks), (v.grad, vs)
        ):
            got = np.concatenate([t.grad for t in shard_list], axis=1)
            np.testing.assert_allclose(got, serial_grad, rtol=0, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        gs=st.sampled_from([1, 2, 3, 4]),
        mult=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_fuzz_ring_matches_serial(self, gs, mult, seed):
        """Fuzz over (gs x S x payload): forward equivalence to 1e-12."""
        rng = np.random.default_rng(seed)
        b, s, h, nh = 1, gs * mult * 2, 8, 2
        qd, kd, vd = (rng.standard_normal((b, s, h)) for _ in range(3))
        ref = causal_attention(Tensor(qd), Tensor(kd), Tensor(vd), nh)
        _, _, full = _ring_outputs(qd, kd, vd, nh, gs)
        np.testing.assert_allclose(full, ref.data, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("gs", [1, 2, 4])
    def test_bitwise_for_exact_payloads(self, gs):
        """With q = 0 (uniform softmax over the causal prefix) and a v
        that is one-hot in sequence with power-of-two payloads, every
        intermediate of both paths is exact except the final division —
        and multiplication by a power of two commutes with rounding, so
        serial and ring outputs must agree *bitwise*."""
        rng = np.random.default_rng(7)
        b, s, h, nh = 2, 8, 8, 2
        qd = np.zeros((b, s, h))
        kd = rng.standard_normal((b, s, h))
        vd = np.zeros((b, s, h))
        vd[:, 0, :] = 2.0 ** rng.integers(-3, 4, size=(b, h))

        ref = causal_attention(Tensor(qd), Tensor(kd), Tensor(vd), nh)
        _, _, full = _ring_outputs(qd, kd, vd, nh, gs)
        assert full.tobytes() == ref.data.tobytes()

    def test_gs1_ring_issues_one_traced_self_transfer(self):
        """The degenerate ring keeps the uniform compute-then-rotate
        schedule: one self-transfer send/recv pair on the lone rank."""
        rng = np.random.default_rng(0)
        qd, kd, vd = (rng.standard_normal((1, 6, 8)) for _ in range(3))
        tracer = CommTracer()
        _, _, _ = _ring_outputs(qd, kd, vd, 2, 1, tracer=tracer)
        ring = [r for r in tracer.records if r.tag == RING_KV_TAG]
        assert len(ring) == 1
        assert ring[0].group.ranks == (0,)
        ops = [e.op for e in tracer.events if e.tag == RING_KV_TAG]
        assert ops == ["send", "recv"]
        assert validate_schedule(tracer) == []

    def test_shard_validation_errors(self):
        with pytest.raises(ValueError):
            shard_sequence(np.zeros((1, 10, 4)), 3)
        group = ProcessGroup((0, 1))
        t = Tensor(np.zeros((1, 2, 4)))
        with pytest.raises(ValueError):
            ring_causal_attention([t], [t, t], [t, t], 2, group)


# (Gx, Gy, Gz, Gdata, Gseq) cases exercising the sequence axis against
# every other axis it composes with.
SP_GRID_CASES = [
    (1, 1, 1, 1, 2),
    (2, 1, 1, 1, 2),
    (1, 2, 1, 1, 2),
    (1, 1, 2, 1, 2),
    (1, 1, 1, 2, 2),
    (2, 2, 1, 1, 3),
    (1, 1, 1, 1, 6),
    (2, 1, 2, 1, 3),
]


class TestSequenceParallelGPT:
    """The 5D-parallel model trains identically to the serial GPT."""

    @pytest.mark.parametrize("dims", SP_GRID_CASES)
    def test_loss_and_grads_match_serial(self, dims):
        gx, gy, gz, gd, gs = dims
        cfg = tiny_config()
        serial = GPT(cfg, seed=3)
        tracer = CommTracer()
        grid = Grid4D(GridConfig(*dims), tracer=tracer)
        par = ParallelGPT.from_serial(serial, grid)
        ids = batch_for(cfg, b=2 * gz * gd, s=6, seed=2)

        sl = serial.loss(ids)
        sl.backward()
        pl = par.loss(ids)
        pl.backward()

        assert pl.item() == pytest.approx(sl.item(), rel=1e-10)
        np.testing.assert_allclose(
            par.wte.weight.grad, serial.wte.weight.grad, rtol=1e-8, atol=1e-10
        )
        # The ring is fully traced: one fused K+V hop per ring member per
        # step per layer per sequence ring, and the schedule is clean.
        ring = [r for r in tracer.records if r.tag == RING_KV_TAG]
        assert len(ring) == cfg.num_layers * gx * gy * gz * gd * gs * gs
        assert validate_schedule(tracer) == []

    def test_seq_len_divisibility_enforced(self):
        cfg = tiny_config()
        grid = Grid4D(GridConfig(1, 1, 1, 1, 2))
        par = ParallelGPT(grid, cfg, seed=0)
        with pytest.raises(ValueError):
            par.loss(batch_for(cfg, b=2, s=5))


class TestMaskFillBugfix:
    """Satellite (a): -inf mask fill, not a finite 'very negative' one."""

    def test_float32_extreme_activations_preserve_causality(self):
        """S=2048 float32 regression: q/k at magnitude 1e17 push the
        legitimate scores to ~-2.8e34 — *below* the old -1e30 fill, which
        therefore handed the softmax mass to future positions.  The -inf
        fill keeps position 0 attending only to itself, with finite loss
        and gradients."""
        s, h, nh = 2048, 8, 1
        q = Tensor(np.full((1, s, h), -1e17, dtype=np.float32), requires_grad=True)
        k = Tensor(np.full((1, s, h), 1e17, dtype=np.float32), requires_grad=True)
        rng = np.random.default_rng(0)
        vd = rng.standard_normal((1, s, h)).astype(np.float32)
        v = Tensor(vd.copy(), requires_grad=True)

        out = causal_attention(q, k, v, nh)
        assert np.isfinite(out.data).all()
        # All visible scores are equal, so row i is the mean of v[:i+1];
        # row 0 in particular is exactly v's first position.
        np.testing.assert_allclose(out.data[:, 0, :], vd[:, 0, :], rtol=1e-5)

        loss = out.sum()
        loss.backward()
        assert np.isfinite(loss.item())
        for t in (q, k, v):
            assert np.isfinite(t.grad).all()

    def test_old_finite_fill_violates_causality_here(self):
        """The pre-fix failure mode, reproduced arithmetically: with the
        -1e30 fill the *masked* entries win the row max and position 0's
        output becomes a mean over its future."""
        s, h = 2048, 8
        qd = np.full((1, s, h), -1e17, dtype=np.float32)
        kd = np.full((1, s, h), 1e17, dtype=np.float32)
        vd = np.random.default_rng(0).standard_normal((1, s, h)).astype(
            np.float32
        )
        scores = (qd[:, None] @ kd[:, None].transpose(0, 1, 3, 2)) * (
            1.0 / np.sqrt(h)
        )
        assert np.isfinite(scores).all() and scores.max() < -1e30
        bad = np.where(causal_mask(s), scores, np.float32(-1e30))
        e = np.exp(bad - bad.max(axis=-1, keepdims=True))
        att = e / e.sum(axis=-1, keepdims=True)
        old_out = (att @ vd[:, None]).reshape(1, s, h)
        assert not np.allclose(old_out[:, 0, :], vd[:, 0, :], atol=1e-3)

    def test_inf_fill_bitwise_matches_finite_fill_for_normal_inputs(self):
        """For in-distribution scores the change is invisible: with the
        max-subtracted softmax, exp(-1e30 - m) underflows to exactly 0.0,
        the same value exp(-inf - m) produces — so no golden churn."""
        rng = np.random.default_rng(1)
        scores = rng.standard_normal((2, 3, 6, 6))
        mask = causal_mask(6)
        new = F.softmax(F.where_mask(Tensor(scores), mask, -np.inf), axis=-1)
        old = F.softmax(F.where_mask(Tensor(scores), mask, -1e30), axis=-1)
        assert new.data.tobytes() == old.data.tobytes()


class TestMaskCache:
    """Satellite (b): memoized causal masks, built once per shape."""

    def test_cache_returns_same_readonly_array(self):
        m = causal_mask(7)
        assert m is causal_mask(7)
        assert m.dtype == bool and m.shape == (7, 7)
        assert not m.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            m[0, 0] = False
        rect = causal_mask(3, kv_len=5)
        assert rect.shape == (3, 5)
        assert rect is causal_mask(3, 5)
        assert causal_mask(3) is not rect

    def test_repeated_attention_builds_each_shape_once(self, monkeypatch):
        calls = []
        real_tril = np.tril

        def counting_tril(*args, **kw):
            calls.append(args)
            return real_tril(*args, **kw)

        transformer_mod._MASK_CACHE.clear()
        monkeypatch.setattr(np, "tril", counting_tril)
        rng = np.random.default_rng(0)
        for _ in range(4):
            q, k, v = (Tensor(rng.standard_normal((1, 6, 8))) for _ in range(3))
            causal_attention(q, k, v, 2)
        assert len(calls) == 1  # one build serves every call at this S


class TestRingScheduleVisibility:
    """Satellite (d): the validator and perfmodel see the ring."""

    def test_traced_ring_bytes_match_seq_ring_volumes(self):
        """Analytic seq_ring volume == the bytes the tracer records."""
        cfg = tiny_config()
        tracer = CommTracer()
        grid = Grid4D(GridConfig(2, 1, 1, 1, 2), tracer=tracer)
        par = ParallelGPT(grid, cfg, seed=0)
        par.loss(batch_for(cfg, b=2, s=6, seed=1))
        got = float(
            sum(r.bytes_per_rank for r in tracer.records if r.tag == RING_KV_TAG)
        )
        vol = seq_ring_volumes(
            cfg, batch_per_replica=2, config=grid.config, dtype_bytes=8,
            seq_len=6,
        )
        assert vol.seq_ring > 0
        assert got == vol.seq_ring

    def test_dropped_ring_message_hangs_and_is_flagged(self):
        """A dropped KV rotation raises the timeout the real runtime
        would hit, and the surviving trace carries exactly the
        unmatched-send footprint the validator reports."""
        cfg = tiny_config(num_layers=1)
        tracer = CommTracer()
        grid = Grid4D(GridConfig(1, 1, 1, 1, 2), tracer=tracer)
        par = ParallelGPT(grid, cfg, seed=0)
        ring_ranks = grid.group_along("seq", 0).ranks
        plan = FaultPlan(
            (
                FaultSpec(
                    kind="drop_p2p",
                    src=ring_ranks[0],
                    dst=ring_ranks[1],
                    match=0,
                ),
            )
        )
        with fault_scope(FaultInjector(plan)):
            with pytest.raises(CommTimeoutError):
                par.loss(batch_for(cfg, b=2, s=6, seed=1))
        violations = validate_schedule(tracer)
        assert any(v.check == "p2p" for v in violations)

    def test_desynced_ring_recv_is_flagged(self):
        """Deleting one ring recv from an otherwise clean schedule (a
        rank that desynced mid-rotation) is caught by the validator."""
        cfg = tiny_config(num_layers=1)
        tracer = CommTracer()
        grid = Grid4D(GridConfig(1, 1, 1, 1, 2), tracer=tracer)
        par = ParallelGPT(grid, cfg, seed=0)
        par.loss(batch_for(cfg, b=2, s=6, seed=1))
        assert validate_schedule(tracer) == []
        events = list(tracer.events)
        idx = next(
            i
            for i, e in enumerate(events)
            if e.tag == RING_KV_TAG and e.op == "recv"
        )
        del events[idx]
        violations = validate_schedule(events)
        assert any(v.check == "p2p" for v in violations)


class TestPlannerCrossover:
    """Satellite/tentpole acceptance: perfmodel and simulator agree on
    the SP-vs-plain-TP crossover at the sweep endpoints, and the
    autotuner exploits the new axis."""

    NUM_GPUS = 32
    BATCH = 8

    def _best_by_class(self, cfg, machine):
        ranked = rank_configurations(
            cfg, self.BATCH, self.NUM_GPUS, machine, max_gs=8
        )
        plain = [r for r in ranked if r.config.gs == 1]
        sp = [r for r in ranked if r.config.gs > 1]
        return plain, sp

    @pytest.mark.parametrize("machine_name", ["perlmutter", "frontier"])
    def test_short_context_both_prefer_plain_tp(self, machine_name):
        machine = get_machine(machine_name)
        cfg = get_model("GPT-5B").scaled(seq_len=2048, name="GPT-5B-2k")
        plain, sp = self._best_by_class(cfg, machine)
        assert plain and sp
        assert plain[0].predicted_time < sp[0].predicted_time
        t_plain = simulate_iteration(
            cfg, self.BATCH, plain[0].config, machine, timing_only=True
        ).total_time
        t_sp = simulate_iteration(
            cfg, self.BATCH, sp[0].config, machine, timing_only=True
        ).total_time
        assert t_plain < t_sp

    def test_long_context_both_prefer_sp_on_perlmutter(self):
        machine = get_machine("perlmutter")
        cfg = get_model("GPT-5B").scaled(seq_len=65536, name="GPT-5B-64k")
        plain, sp = self._best_by_class(cfg, machine)
        assert plain and sp
        assert sp[0].predicted_time < plain[0].predicted_time
        t_plain = simulate_iteration(
            cfg, self.BATCH, plain[0].config, machine, timing_only=True
        ).total_time
        t_sp = simulate_iteration(
            cfg, self.BATCH, sp[0].config, machine, timing_only=True
        ).total_time
        assert t_sp < t_plain

    @pytest.mark.parametrize("machine_name", ["perlmutter", "frontier"])
    def test_128k_context_only_sp_is_feasible(self, machine_name):
        """At 128k both planning layers agree for the strongest possible
        reason: the shared memory model rules out every classic 4D grid
        (the full (S, S) score block does not fit), while ring attention
        — whose live score block shrinks by gs^2 — still runs."""
        machine = get_machine(machine_name)
        cfg = get_model("GPT-5B").scaled(seq_len=131072, name="GPT-5B-128k")
        plain, sp = self._best_by_class(cfg, machine)
        assert not plain
        assert sp
        t_sp = simulate_iteration(
            cfg, self.BATCH, sp[0].config, machine, timing_only=True
        ).total_time
        assert np.isfinite(t_sp) and t_sp > 0

    def test_autotuner_reaches_for_sequence_parallelism(self):
        """16 devices at 64k: no classic grid fits, so the classic
        search space reports infeasibility — and opening ``max_gs``
        produces a gs > 1 winner with a five-axis grid in its report."""
        cfg = get_model("GPT-5B").scaled(seq_len=65536, name="GPT-5B-64k")
        request = PlanRequest(
            model=cfg, num_gpus=16, machine="perlmutter", global_batch=8,
            top_k=2,
        )
        cheap = dict(
            prune_k=4,
            validate_k=2,
            overlap_flags=(OverlapFlags.all(),),
            kernel_tuning=(True,),
            collective_algos=("flat",),
        )
        with pytest.raises(NoFeasibleConfigError):
            autotune(request, SearchSpace(**cheap))
        report = autotune(request, SearchSpace(max_gs=8, **cheap))
        win = report.winner
        assert win.config.gs > 1
        assert len(win.to_json()["grid"]) == 5
        assert win.config.total == 16
        assert win.simulated_time > 0
